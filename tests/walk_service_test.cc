// Tests for the streaming WalkService: global query-id assignment keeps
// paths bit-identical whether batches are submitted concurrently (in
// flight together) or strictly sequentially, batch results match one-shot
// scheduler runs over the concatenated starts, the FlexiWalker serving
// factory reproduces the one-shot engine, and shutdown drains cleanly.
#include "src/walker/walk_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <span>
#include <vector>

#include "src/graph/generators.h"
#include "src/net/walk_client.h"
#include "src/net/walk_server.h"
#include "src/sampling/inverse_transform.h"
#include "src/walks/deepwalk.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

Graph TestGraph() {
  Graph g = GenerateErdosRenyi(256, 8.0, 71);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 72);
  return g;
}

StepKernel ItsStep() {
  return [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q, KernelRng& rng) {
    return InverseTransformStep(ctx, l, q, rng);
  };
}

WalkService::Options ItsOptions(uint64_t seed, unsigned threads = 0) {
  WalkService::Options options;
  options.seed = seed;
  options.scheduler.num_threads = threads;
  return options;
}

std::vector<NodeId> Range(NodeId begin, NodeId end) {
  std::vector<NodeId> starts;
  for (NodeId v = begin; v < end; ++v) {
    starts.push_back(v);
  }
  return starts;
}

TEST(WalkService, ConcurrentSubmissionMatchesSequentialSubmission) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);
  std::vector<NodeId> batch_a = Range(0, 100);
  std::vector<NodeId> batch_b = Range(100, 256);

  // Sequential: submit A, wait, submit B, wait.
  WalkService sequential(graph, walk, ItsOptions(42, 8), ItsStep());
  BatchResult seq_a = sequential.Submit({batch_a}).get();
  BatchResult seq_b = sequential.Submit({batch_b}).get();

  // Concurrent: both batches in flight before either result is read.
  WalkService concurrent(graph, walk, ItsOptions(42, 8), ItsStep());
  std::future<BatchResult> fut_a = concurrent.Submit({batch_a});
  std::future<BatchResult> fut_b = concurrent.Submit({batch_b});
  BatchResult con_b = fut_b.get();
  BatchResult con_a = fut_a.get();

  EXPECT_EQ(seq_a.walk.paths, con_a.walk.paths);
  EXPECT_EQ(seq_b.walk.paths, con_b.walk.paths);
  EXPECT_EQ(seq_a.first_query_id, con_a.first_query_id);
  EXPECT_EQ(seq_b.first_query_id, con_b.first_query_id);
  EXPECT_EQ(seq_b.walk.cost.rng_draws, con_b.walk.cost.rng_draws);
}

TEST(WalkService, BatchCarvingDoesNotChangePaths) {
  // The same 256 starts served as one batch and as three uneven batches:
  // the concatenated path rows must be bit-identical, because a query's
  // Philox subsequence is keyed by its global id, not its batch.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);

  WalkService one_batch(graph, walk, ItsOptions(7, 8), ItsStep());
  BatchResult whole = one_batch.Submit({Range(0, 256)}).get();

  WalkService three_batches(graph, walk, ItsOptions(7, 8), ItsStep());
  std::vector<std::future<BatchResult>> futures;
  futures.push_back(three_batches.Submit({Range(0, 11)}));
  futures.push_back(three_batches.Submit({Range(11, 200)}));
  futures.push_back(three_batches.Submit({Range(200, 256)}));
  std::vector<NodeId> stitched;
  for (auto& future : futures) {
    BatchResult part = future.get();
    stitched.insert(stitched.end(), part.walk.paths.begin(), part.walk.paths.end());
  }
  EXPECT_EQ(whole.walk.paths, stitched);
}

TEST(WalkService, ServedPathsBitIdenticalAcrossWavefrontWidths) {
  // Served-vs-one-shot parity over the wavefront matrix: the scheduler's
  // batched inner loop (scheduler.h, wavefront) must not change a served
  // path for any width, thread count, or dispensation mode — the draws of
  // every query come from its own global-id-keyed stream.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);
  std::vector<NodeId> starts = Range(0, 256);

  SchedulerOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.wavefront = 1;
  WalkResult reference =
      WalkScheduler(reference_options).Run(graph, walk, starts, /*seed=*/42, ItsStep());

  for (uint32_t wavefront : {1u, 4u, 16u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      for (DispenseMode mode :
           {DispenseMode::kPerQuery, DispenseMode::kChunked, DispenseMode::kChunkedSteal}) {
        WalkService::Options options = ItsOptions(42, threads);
        options.scheduler.wavefront = wavefront;
        options.scheduler.dispense = {mode, 0};
        WalkService service(graph, walk, options, ItsStep());
        BatchResult served = service.Submit({starts}).get();
        EXPECT_EQ(served.walk.paths, reference.paths)
            << "wavefront=" << wavefront << " threads=" << threads
            << " mode=" << static_cast<int>(mode);
      }
    }
  }
}

TEST(WalkService, SubmitIntoWritesCallerArenaBitIdenticalToSubmit) {
  // The zero-copy serving path: rows land in a caller-owned PathArena and
  // walk.paths stays empty — but the bytes must equal a plain Submit of the
  // same starts, and interleaved arena/non-arena batches must share the
  // global id cursor.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);

  WalkService plain(graph, walk, ItsOptions(42, 8), ItsStep());
  BatchResult expected_a = plain.Submit({Range(0, 100)}).get();
  BatchResult expected_b = plain.Submit({Range(100, 256)}).get();

  WalkService arena_service(graph, walk, ItsOptions(42, 8), ItsStep());
  EXPECT_EQ(arena_service.path_stride(), walk.walk_length() + 1);
  PathArena arena_a(100, arena_service.path_stride());
  BatchResult got_a = arena_service.SubmitInto({Range(0, 100)}, arena_a.view()).get();
  BatchResult got_b = arena_service.Submit({Range(100, 256)}).get();

  EXPECT_TRUE(got_a.walk.paths.empty());  // rows live in the arena
  EXPECT_EQ(got_a.walk.num_queries, 100u);
  EXPECT_EQ(got_a.first_query_id, expected_a.first_query_id);
  std::span<const NodeId> rows = arena_a.Slice(0, 100);
  EXPECT_TRUE(std::equal(rows.begin(), rows.end(), expected_a.walk.paths.begin(),
                         expected_a.walk.paths.end()));
  EXPECT_EQ(got_b.walk.paths, expected_b.walk.paths);
  EXPECT_EQ(got_b.first_query_id, expected_b.first_query_id);
}

TEST(WalkService, QueryIdsAreContiguousAcrossBatches) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 4);
  WalkService service(graph, walk, ItsOptions(1), ItsStep());
  BatchResult first = service.Submit({Range(0, 10)}).get();
  BatchResult second = service.Submit({Range(10, 15)}).get();
  BatchResult third = service.Submit({Range(15, 40)}).get();
  EXPECT_EQ(first.first_query_id, 0u);
  EXPECT_EQ(second.first_query_id, 10u);
  EXPECT_EQ(third.first_query_id, 15u);
  EXPECT_EQ(first.batch_index, 0u);
  EXPECT_EQ(third.batch_index, 2u);
  EXPECT_EQ(service.queries_submitted(), 40u);
  EXPECT_EQ(service.batches_completed(), 3u);
}

TEST(WalkService, ShutdownDrainsQueuedBatches) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  WalkService service(graph, walk, ItsOptions(3, 4), ItsStep());
  std::vector<std::future<BatchResult>> futures;
  for (int b = 0; b < 6; ++b) {
    futures.push_back(service.Submit({Range(0, 64)}));
  }
  service.Shutdown();  // must complete everything already accepted
  for (auto& future : futures) {
    BatchResult result = future.get();
    EXPECT_EQ(result.walk.num_queries, 64u);
  }
  EXPECT_EQ(service.batches_completed(), 6u);
}

TEST(WalkService, SubmitAfterShutdownFails) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 4);
  WalkService service(graph, walk, ItsOptions(1), ItsStep());
  service.Shutdown();
  std::future<BatchResult> future = service.Submit({Range(0, 4)});
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(WalkService, EmptyBatchCompletes) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 4);
  WalkService service(graph, walk, ItsOptions(1), ItsStep());
  BatchResult result = service.Submit({}).get();
  EXPECT_EQ(result.walk.num_queries, 0u);
  EXPECT_TRUE(result.walk.paths.empty());
}

TEST(FlexiWalkerService, FirstBatchMatchesOneShotEngine) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);
  auto starts = AllNodesAsStarts(graph);

  FlexiWalkerOptions options;
  options.host_threads = 8;
  WalkResult engine_result = FlexiWalkerEngine(options).Run(graph, walk, starts, 99);

  auto service = MakeFlexiWalkerService(graph, walk, options, 99);
  BatchResult served = service->Submit({starts}).get();
  EXPECT_EQ(engine_result.paths, served.walk.paths);
  EXPECT_EQ(engine_result.cost.rng_draws, served.walk.cost.rng_draws);
}

TEST(WalkService, PipelinedBatchesMatchSerialBatches) {
  // pipeline_depth > 1 runs batches concurrently on the pool; global ids are
  // assigned at Submit, so every batch's paths must match the depth-1
  // service fed identically — pipelining moves execution, never randomness.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 10);

  WalkService::Options serial_options = ItsOptions(13, 4);
  WalkService serial(graph, walk, serial_options, ItsStep());
  WalkService::Options pipelined_options = ItsOptions(13, 4);
  pipelined_options.pipeline_depth = 4;
  WalkService pipelined(graph, walk, pipelined_options, ItsStep());
  EXPECT_EQ(pipelined.pipeline_depth(), 4u);

  std::vector<std::future<BatchResult>> serial_futures;
  std::vector<std::future<BatchResult>> pipelined_futures;
  for (int b = 0; b < 12; ++b) {
    NodeId begin = static_cast<NodeId>((b * 17) % 200);
    serial_futures.push_back(serial.Submit({Range(begin, begin + 20)}));
    pipelined_futures.push_back(pipelined.Submit({Range(begin, begin + 20)}));
  }
  for (int b = 0; b < 12; ++b) {
    BatchResult s = serial_futures[b].get();
    BatchResult p = pipelined_futures[b].get();
    EXPECT_EQ(s.first_query_id, p.first_query_id) << "batch " << b;
    EXPECT_EQ(s.walk.paths, p.walk.paths) << "batch " << b;
  }
}

TEST(FlexiWalkerService, PipelinedServiceMatchesEngineAndDepthOne) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 12);
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.host_threads = 4;
  auto starts = Range(0, 128);

  auto depth1 = MakeFlexiWalkerService(graph, walk, options, 31, /*pipeline_depth=*/1);
  auto depth4 = MakeFlexiWalkerService(graph, walk, options, 31, /*pipeline_depth=*/4);
  std::vector<std::future<BatchResult>> f1;
  std::vector<std::future<BatchResult>> f4;
  for (int b = 0; b < 6; ++b) {
    f1.push_back(depth1->Submit({starts}));
    f4.push_back(depth4->Submit({starts}));
  }
  for (int b = 0; b < 6; ++b) {
    EXPECT_EQ(f1[b].get().walk.paths, f4[b].get().walk.paths) << "batch " << b;
  }
}

TEST(FlexiWalkerService, StaticCacheServiceMatchesStaticCacheEngine) {
  // The cached static-walk fast path (DeepWalk => per-node alias tables
  // built once) must keep the serving contract: service batches reproduce
  // the one-shot engine bit-for-bit under the same options, across thread
  // counts and pipeline depths.
  Graph graph = TestGraph();
  DeepWalk walk(16);
  auto starts = AllNodesAsStarts(graph);

  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.cache_static_tables = true;
  options.host_threads = 8;
  WalkResult engine_result = FlexiWalkerEngine(options).Run(graph, walk, starts, 55);

  auto service = MakeFlexiWalkerService(graph, walk, options, 55, /*pipeline_depth=*/2);
  BatchResult served = service->Submit({starts}).get();
  EXPECT_EQ(engine_result.paths, served.walk.paths);

  // Bit-identical across thread counts (the contract every parallel phase
  // obeys), and no per-step selection happens on the fast path.
  FlexiWalkerOptions one_thread = options;
  one_thread.host_threads = 1;
  WalkResult single = FlexiWalkerEngine(one_thread).Run(graph, walk, starts, 55);
  EXPECT_EQ(single.paths, engine_result.paths);
  EXPECT_EQ(engine_result.selection.chose_rjs + engine_result.selection.chose_rvs, 0u);

  // Walk validity: every transition must follow a real out-edge.
  for (size_t q = 0; q < engine_result.num_queries; ++q) {
    auto path = engine_result.Path(q);
    for (size_t s = 1; s < path.size() && path[s] != kInvalidNode; ++s) {
      bool is_neighbor = false;
      for (uint32_t i = 0; i < graph.Degree(path[s - 1]); ++i) {
        if (graph.Neighbor(path[s - 1], i) == path[s]) {
          is_neighbor = true;
          break;
        }
      }
      ASSERT_TRUE(is_neighbor) << "query " << q << " step " << s;
    }
  }
}

TEST(FlexiWalkerService, StaticCacheIsNoOpForDynamicWorkloads) {
  // Node2Vec's weight depends on the previous node: the static analysis
  // must refuse the cache and leave paths exactly as without the option.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 10);
  auto starts = Range(0, 64);
  FlexiWalkerOptions off;
  off.edge_cost_ratio = 4.0;
  off.host_threads = 4;
  FlexiWalkerOptions on = off;
  on.cache_static_tables = true;
  WalkResult without = FlexiWalkerEngine(off).Run(graph, walk, starts, 9);
  WalkResult with = FlexiWalkerEngine(on).Run(graph, walk, starts, 9);
  EXPECT_EQ(without.paths, with.paths);
  EXPECT_GT(with.selection.chose_rjs + with.selection.chose_rvs, 0u);
}

TEST(FlexiWalkerService, StaticCacheChangesDrawSequenceButStaysSeedStable) {
  // Cached sampling consumes different RNG draws than eRJS/eRVS, so paths
  // legitimately differ from the uncached configuration — but two cached
  // runs at the same seed agree exactly.
  Graph graph = TestGraph();
  DeepWalk walk(16);
  auto starts = Range(0, 128);
  FlexiWalkerOptions cached;
  cached.edge_cost_ratio = 4.0;
  cached.cache_static_tables = true;
  cached.host_threads = 4;
  FlexiWalkerOptions uncached = cached;
  uncached.cache_static_tables = false;
  WalkResult a = FlexiWalkerEngine(cached).Run(graph, walk, starts, 5);
  WalkResult b = FlexiWalkerEngine(cached).Run(graph, walk, starts, 5);
  WalkResult c = FlexiWalkerEngine(uncached).Run(graph, walk, starts, 5);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_NE(a.paths, c.paths);
}

TEST(FlexiWalkerService, RepeatedBatchesStayDeterministicPerGlobalId) {
  // Serving the same starts twice yields different paths (fresh global ids,
  // fresh Philox subsequences — walks are new draws, not replays), but two
  // services fed identically agree batch-for-batch.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.host_threads = 4;
  auto starts = Range(0, 128);

  auto service_x = MakeFlexiWalkerService(graph, walk, options, 5);
  auto service_y = MakeFlexiWalkerService(graph, walk, options, 5);
  BatchResult x1 = service_x->Submit({starts}).get();
  BatchResult x2 = service_x->Submit({starts}).get();
  BatchResult y1 = service_y->Submit({starts}).get();
  BatchResult y2 = service_y->Submit({starts}).get();

  EXPECT_NE(x1.walk.paths, x2.walk.paths);
  EXPECT_EQ(x1.walk.paths, y1.walk.paths);
  EXPECT_EQ(x2.walk.paths, y2.walk.paths);
}

// ------------------------------------------------- multi-workload serving ----

// Two workloads — different walk logics, different seeds, independent
// prepared engines — registered on ONE server and interleaved over ONE
// connection must each be bit-identical to a one-shot engine run over that
// workload's starts in submission order. Routing (the v2 workload_id field)
// must never mix the streams: a request landing on the wrong coalescer
// would get the other logic's stride and paths.
TEST(MultiWorkloadServing, InterleavedWorkloadsMatchTheirOneShotEngines) {
  Graph graph = TestGraph();
  Node2VecWalk n2v(2.0, 0.5, 12);
  DeepWalk deepwalk(8);  // different stride (9 vs 13): crossed routing is loud
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.host_threads = 4;

  auto service_a = MakeFlexiWalkerService(graph, n2v, options, /*seed=*/99);
  auto service_b = MakeFlexiWalkerService(graph, deepwalk, options, /*seed=*/1234);

  WalkServer::Options server_options;
  server_options.port = 0;
  server_options.coalescer.max_delay_ms = 2.0;
  WalkServer server(*service_a, graph.num_nodes(), server_options);
  BatchCoalescer::Options b_admission;
  b_admission.max_delay_ms = 2.0;
  uint32_t workload_b = server.RegisterWorkload("deepwalk", *service_b, b_admission);
  ASSERT_EQ(workload_b, 1u);
  EXPECT_EQ(server.workload_count(), 2u);
  EXPECT_EQ(server.workload_name(0), "default");
  EXPECT_EQ(server.workload_name(1), "deepwalk");
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  WalkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::vector<NodeId> starts_a;
  std::vector<NodeId> starts_b;
  std::vector<std::future<WalkClient::Result>> futures_a;
  std::vector<std::future<WalkClient::Result>> futures_b;
  // Interleaved pipelined submissions so both coalescers see real
  // concurrency, on one connection so per-workload arrival order is exact.
  for (uint32_t r = 0; r < 20; ++r) {
    std::vector<NodeId> a;
    for (uint32_t i = 0; i <= r % 3; ++i) {
      a.push_back((r * 17 + i * 5) % graph.num_nodes());
    }
    starts_a.insert(starts_a.end(), a.begin(), a.end());
    futures_a.push_back(client.Submit(std::move(a), /*workload_id=*/0));
    std::vector<NodeId> b;
    for (uint32_t i = 0; i <= r % 2; ++i) {
      b.push_back((r * 23 + i * 7) % graph.num_nodes());
    }
    starts_b.insert(starts_b.end(), b.begin(), b.end());
    futures_b.push_back(client.Submit(std::move(b), workload_b));
  }

  WalkResult engine_a = FlexiWalkerEngine(options).Run(graph, n2v, starts_a, 99);
  WalkResult engine_b = FlexiWalkerEngine(options).Run(graph, deepwalk, starts_b, 1234);

  auto reassemble = [](std::vector<std::future<WalkClient::Result>>& futures,
                       const WalkResult& expected) {
    std::vector<NodeId> served(expected.paths.size(), kInvalidNode);
    for (auto& future : futures) {
      WalkClient::Result result = future.get();
      ASSERT_EQ(result.path_stride, expected.path_stride);
      ASSERT_LE((result.first_query_id + result.num_queries) * result.path_stride,
                served.size());
      std::copy(result.paths.begin(), result.paths.end(),
                served.begin() + result.first_query_id * result.path_stride);
    }
    EXPECT_EQ(served, expected.paths);
  };
  reassemble(futures_a, engine_a);
  reassemble(futures_b, engine_b);

  EXPECT_EQ(server.workload_requests_received(0), 20u);
  EXPECT_EQ(server.workload_requests_received(1), 20u);
  EXPECT_EQ(server.workload_requests_rejected(0), 0u);
  EXPECT_EQ(server.workload_requests_rejected(1), 0u);

  client.Close();
  server.Stop();
  service_a->Shutdown();
  service_b->Shutdown();
}

// Admission quotas are per-workload: a workload whose quota is exhausted
// answers per-request kOverloaded errors while the other workload's
// requests keep completing promptly — one hot tenant cannot starve the
// other's admission, and the connection survives every rejection.
TEST(MultiWorkloadServing, QuotaExhaustedWorkloadDoesNotStarveTheOther) {
  Graph graph = TestGraph();
  Node2VecWalk n2v(2.0, 0.5, 10);
  DeepWalk deepwalk(6);
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.host_threads = 4;
  auto service_a = MakeFlexiWalkerService(graph, n2v, options, /*seed=*/7);
  auto service_b = MakeFlexiWalkerService(graph, deepwalk, options, /*seed=*/8);

  WalkServer::Options server_options;
  server_options.port = 0;
  server_options.coalescer.max_delay_ms = 0.2;  // workload 0 stays snappy
  WalkServer server(*service_a, graph.num_nodes(), server_options);
  // Workload 1: tiny quota, reject on overflow, and a window long enough
  // that the quota-filling request deterministically sits in pending while
  // the rejections and the cross-workload probes run.
  BatchCoalescer::Options starved;
  starved.max_outstanding_queries = 4;
  starved.overflow = BatchCoalescer::OverflowPolicy::kReject;
  starved.max_delay_ms = 2000.0;
  uint32_t workload_b = server.RegisterWorkload("starved", *service_b, starved);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  WalkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  // Fill workload 1's quota; the long window parks it in pending.
  std::future<WalkClient::Result> parked = client.Submit({0, 1, 2, 3}, workload_b);
  // Give the event loop a moment to admit it before probing the quota.
  auto quota_full = [&] {
    return server.workload_coalescer(workload_b).outstanding_queries() >= 4;
  };
  for (int i = 0; i < 2000 && !quota_full(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(quota_full());

  auto wall_start = std::chrono::steady_clock::now();
  int rejections = 0;
  for (int r = 0; r < 8; ++r) {
    // Quota-exhausted workload: every request gets its own error...
    try {
      client.Walk({5}, workload_b);
    } catch (const std::runtime_error&) {
      ++rejections;
    }
    // ...while the other workload keeps serving on the same connection.
    WalkClient::Result ok = client.Walk({static_cast<NodeId>(r * 3)}, 0);
    EXPECT_EQ(ok.num_queries, 1u);
    EXPECT_EQ(ok.paths[0], static_cast<NodeId>(r * 3));
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  EXPECT_EQ(rejections, 8);
  // All 8 workload-0 round trips finished while workload 1's 2-second
  // window was still holding its quota — bounded latency, not starvation.
  EXPECT_LT(elapsed_ms, 1900.0);
  EXPECT_EQ(server.workload_requests_rejected(workload_b), 8u);
  EXPECT_EQ(server.workload_requests_rejected(0), 0u);

  // Stop flushes workload 1's pending window: the parked request completes
  // with its responses delivered before the connection closes.
  server.Stop();
  WalkClient::Result parked_result = parked.get();
  EXPECT_EQ(parked_result.num_queries, 4u);
  client.Close();
  service_a->Shutdown();
  service_b->Shutdown();
}

}  // namespace
}  // namespace flexi
