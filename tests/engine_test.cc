// Integration tests: every engine (FlexiWalker + the six baselines) walks
// reference graphs and produces structurally valid, schema-respecting,
// statistically correct paths.
#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/baselines.h"
#include "src/graph/generators.h"
#include "src/metrics/stats.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walks/deepwalk.h"
#include "src/walks/metapath.h"
#include "src/walks/node2vec.h"
#include "src/walks/second_order_pr.h"

namespace flexi {
namespace {

std::vector<std::unique_ptr<Engine>> AllEngines() {
  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<FlexiWalkerEngine>());
  engines.push_back(std::make_unique<CSawEngine>());
  engines.push_back(std::make_unique<SkywalkerEngine>());
  engines.push_back(std::make_unique<NextDoorEngine>());
  engines.push_back(std::make_unique<FlowWalkerEngine>());
  engines.push_back(std::make_unique<ThunderRWEngine>());
  engines.push_back(std::make_unique<KnightKingEngine>());
  engines.push_back(std::make_unique<SOWalkerEngine>());
  return engines;
}

Graph TestGraph() {
  Graph g = GenerateErdosRenyi(128, 6.0, 31);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 32);
  AssignLabels(g, 5, 33);
  return g;
}

void CheckPathsValid(const Graph& graph, const WalkResult& result,
                     std::span<const NodeId> starts, const std::string& engine) {
  ASSERT_EQ(result.num_queries, starts.size()) << engine;
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    auto path = result.Path(qid);
    EXPECT_EQ(path[0], starts[qid]) << engine;
    for (size_t s = 0; s + 1 < path.size(); ++s) {
      if (path[s + 1] == kInvalidNode) {
        // Once a path ends it stays ended.
        for (size_t rest = s + 1; rest < path.size(); ++rest) {
          EXPECT_EQ(path[rest], kInvalidNode) << engine;
        }
        break;
      }
      EXPECT_TRUE(graph.HasEdge(path[s], path[s + 1]))
          << engine << " query " << qid << " step " << s;
    }
  }
}

TEST(Engines, AllProduceValidNode2VecPaths) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, /*length=*/12);
  auto starts = AllNodesAsStarts(graph);
  for (auto& engine : AllEngines()) {
    WalkResult result = engine->Run(graph, walk, starts, 7);
    CheckPathsValid(graph, result, starts, engine->name());
    EXPECT_GT(result.sim_ms, 0.0) << engine->name();
    EXPECT_GT(result.joules, 0.0) << engine->name();
  }
}

TEST(Engines, MetaPathPathsFollowSchema) {
  Graph graph = TestGraph();
  std::vector<uint8_t> schema = {0, 1, 2, 3, 4};
  MetaPathWalk walk(schema);
  auto starts = AllNodesAsStarts(graph);
  FlexiWalkerEngine engine;
  WalkResult result = engine.Run(graph, walk, starts, 11);
  size_t full_paths = 0;
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    auto path = result.Path(qid);
    for (size_t s = 0; s + 1 < path.size() && path[s + 1] != kInvalidNode; ++s) {
      // Locate the traversed edge and verify its label matches the schema.
      NodeId v = path[s];
      NodeId u = path[s + 1];
      bool label_ok = false;
      for (uint32_t i = 0; i < graph.Degree(v); ++i) {
        if (graph.Neighbor(v, i) == u &&
            graph.EdgeLabel(graph.EdgesBegin(v) + i) == schema[s]) {
          label_ok = true;
          break;
        }
      }
      EXPECT_TRUE(label_ok) << "query " << qid << " step " << s;
      if (s + 2 == path.size()) {
        ++full_paths;
      }
    }
  }
  // With 5 labels and degree ~7, most steps find a matching edge; at least
  // some queries should complete the whole schema.
  EXPECT_GT(full_paths, 0u);
}

TEST(Engines, DeterministicForSameSeed) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  auto starts = AllNodesAsStarts(graph);
  FlexiWalkerEngine e1;
  FlexiWalkerEngine e2;
  WalkResult r1 = e1.Run(graph, walk, starts, 99);
  WalkResult r2 = e2.Run(graph, walk, starts, 99);
  EXPECT_EQ(r1.paths, r2.paths);
}

TEST(Engines, DifferentSeedsDiverge) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  auto starts = AllNodesAsStarts(graph);
  FlexiWalkerEngine engine;
  WalkResult r1 = engine.Run(graph, walk, starts, 1);
  WalkResult r2 = engine.Run(graph, walk, starts, 2);
  EXPECT_NE(r1.paths, r2.paths);
}

// Statistical cross-validation: FlexiWalker's first-step distribution from a
// fixed start node matches the exact transition probabilities.
TEST(Engines, FlexiWalkerFirstStepDistributionIsExact) {
  GraphBuilder builder(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    builder.AddEdge(0, leaf);
    builder.AddEdge(leaf, 0);
  }
  Graph graph = builder.Build();
  std::vector<float> h = {3.0f, 2.0f, 4.0f, 1.0f, 5.0f};
  std::vector<float> all(graph.num_edges(), 1.0f);
  for (uint32_t i = 0; i < 5; ++i) {
    all[graph.EdgesBegin(0) + i] = h[i];
  }
  graph.SetPropertyWeights(std::move(all));

  DeepWalk walk(1);
  FlexiWalkerEngine engine;
  std::vector<NodeId> starts(20000, 0);
  WalkResult result = engine.Run(graph, walk, starts, 5);
  std::vector<uint64_t> observed(5, 0);
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    NodeId next = result.Path(qid)[1];
    ASSERT_NE(next, kInvalidNode);
    ++observed[next - 1];
  }
  std::vector<double> expected = {3.0 / 15, 2.0 / 15, 4.0 / 15, 1.0 / 15, 5.0 / 15};
  auto chi = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_TRUE(chi.consistent) << chi.statistic;
}

TEST(Engines, OpaqueWorkloadFallsBackToRvsOnly) {
  Graph graph = TestGraph();
  OpaqueWalk walk(6);
  auto starts = AllNodesAsStarts(graph);
  FlexiWalkerEngine engine;
  WalkResult result = engine.Run(graph, walk, starts, 3);
  EXPECT_FALSE(engine.helpers().valid());
  EXPECT_EQ(result.selection.chose_rjs, 0u);  // §7.1: soundness fallback
  EXPECT_GT(result.selection.chose_rvs, 0u);
  CheckPathsValid(graph, result, starts, engine.name());
}

TEST(Engines, SelectionCountersCoverEverySampledStep) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 10);
  auto starts = AllNodesAsStarts(graph);
  FlexiWalkerEngine engine;
  WalkResult result = engine.Run(graph, walk, starts, 17);
  uint64_t steps_taken = 0;
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    auto path = result.Path(qid);
    for (size_t s = 1; s < path.size() && path[s] != kInvalidNode; ++s) {
      ++steps_taken;
    }
  }
  // Each sampled step consumed one selector decision (dead-end steps also
  // consume one, so selections >= steps).
  EXPECT_GE(result.selection.chose_rjs + result.selection.chose_rvs, steps_taken);
}

TEST(Engines, WalkLengthHonored) {
  Graph graph = GenerateComplete(16);  // no dead ends
  Node2VecWalk walk(2.0, 0.5, 5);
  auto starts = AllNodesAsStarts(graph);
  for (auto& engine : AllEngines()) {
    WalkResult result = engine->Run(graph, walk, starts, 19);
    for (size_t qid = 0; qid < result.num_queries; ++qid) {
      auto path = result.Path(qid);
      ASSERT_EQ(path.size(), 6u);
      for (NodeId node : path) {
        EXPECT_NE(node, kInvalidNode) << engine->name();
      }
    }
  }
}

TEST(Engines, EmptyStartSetYieldsEmptyResult) {
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  FlexiWalkerEngine engine;
  WalkResult result = engine.Run(graph, walk, {}, 1);
  EXPECT_EQ(result.num_queries, 0u);
  EXPECT_TRUE(result.paths.empty());
}

TEST(Engines, DeadEndTerminatesWalkEarly) {
  // Path graph 0 -> 1 -> 2, node 2 is a sink.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  Graph graph = builder.Build();
  DeepWalk walk(10);
  std::vector<NodeId> starts = {0};
  for (auto& engine : AllEngines()) {
    WalkResult result = engine->Run(graph, walk, starts, 23);
    auto path = result.Path(0);
    EXPECT_EQ(path[0], 0u) << engine->name();
    EXPECT_EQ(path[1], 1u) << engine->name();
    EXPECT_EQ(path[2], 2u) << engine->name();
    EXPECT_EQ(path[3], kInvalidNode) << engine->name();
  }
}

TEST(Engines, GpuBaselinesCheaperThanCpuBaselines) {
  // The device profiles must reproduce the paper's GPU >> CPU gap on
  // simulated time for the same workload.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 8);
  auto starts = AllNodesAsStarts(graph);
  FlowWalkerEngine gpu;
  ThunderRWEngine cpu;
  WalkResult g = gpu.Run(graph, walk, starts, 29);
  WalkResult c = cpu.Run(graph, walk, starts, 29);
  EXPECT_LT(g.sim_ms, c.sim_ms);
}

TEST(Engines, NextDoorKnownMaxSkipsScans) {
  Graph graph = GenerateErdosRenyi(128, 6.0, 41);  // unweighted
  Node2VecWalk walk(2.0, 0.5, 8);
  auto starts = AllNodesAsStarts(graph);
  NextDoorEngine with_max(std::optional<double>(2.0));
  NextDoorEngine without_max;
  WalkResult fast = with_max.Run(graph, walk, starts, 31);
  WalkResult slow = without_max.Run(graph, walk, starts, 31);
  EXPECT_LT(fast.cost.coalesced_transactions, slow.cost.coalesced_transactions);
  EXPECT_LT(fast.sim_ms, slow.sim_ms);
}

TEST(Engines, StartHelpers) {
  Graph graph = GenerateCycle(10);
  EXPECT_EQ(AllNodesAsStarts(graph).size(), 10u);
  EXPECT_EQ(StridedStarts(graph, 3).size(), 4u);  // 0,3,6,9
}

}  // namespace
}  // namespace flexi
