// Tests for the persistent WorkerPool: threads are spawned once and reused
// across Runs (stable thread ids, no spawn per batch), shutdown joins
// cleanly, nested submission cannot deadlock, every index runs exactly
// once, and the worker-budget scope caps scheduler resolution.
#include "src/walker/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/sampling/inverse_transform.h"
#include "src/walker/scheduler.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

TEST(WorkerPool, EveryIndexRunsExactlyOnce) {
  WorkerPool pool;
  constexpr unsigned kWorkers = 64;
  std::vector<std::atomic<int>> hits(kWorkers);
  pool.Run(kWorkers, [&](unsigned w) { hits[w].fetch_add(1); });
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(hits[w].load(), 1) << w;
  }
}

TEST(WorkerPool, ThreadsAreReusedAcrossRuns) {
  // Which subset of pool threads participates in any one Run is timing-
  // dependent (the submitter may claim every index before a parked thread
  // wakes), so the race-free reuse property is the bound on the union: over
  // many Runs, every executing thread is either one of the pool's
  // once-spawned threads or the submitter — never a fresh spawn.
  WorkerPool pool;
  std::mutex mutex;
  std::set<std::thread::id> all_ids;
  pool.Run(8, [&](unsigned) {
    std::lock_guard<std::mutex> lock(mutex);
    all_ids.insert(std::this_thread::get_id());
  });
  size_t spawned_after_first = pool.thread_count();
  // The submitter participates, so at most workers - 1 threads were spawned.
  EXPECT_LE(spawned_after_first, 7u);

  for (int run = 0; run < 50; ++run) {
    pool.Run(8, [&](unsigned) {
      std::lock_guard<std::mutex> lock(mutex);
      all_ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(pool.thread_count(), spawned_after_first) << "run " << run << " spawned threads";
  }
  // 51 runs of width 8 on fresh threads would show up to 408 distinct ids.
  EXPECT_LE(all_ids.size(), spawned_after_first + 1);
}

TEST(WorkerPool, GrowsForWiderJobsButNeverPerBatch) {
  WorkerPool pool;
  pool.Run(4, [](unsigned) {});
  size_t narrow = pool.thread_count();
  pool.Run(16, [](unsigned) {});
  size_t wide = pool.thread_count();
  EXPECT_GE(wide, narrow);
  for (int run = 0; run < 20; ++run) {
    pool.Run(16, [](unsigned) {});
  }
  EXPECT_EQ(pool.thread_count(), wide);
}

TEST(WorkerPool, ShutdownJoinsCleanly) {
  std::atomic<int> total{0};
  {
    WorkerPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    pool.Run(8, [&](unsigned) { total.fetch_add(1); });
  }  // destructor joins the parked workers
  EXPECT_EQ(total.load(), 8);
}

TEST(WorkerPool, JobWiderThanPoolStillCompletes) {
  WorkerPool pool;  // empty; Run grows it as needed
  std::atomic<int> total{0};
  pool.Run(32, [&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 32);
}

TEST(WorkerPool, NestedRunCompletes) {
  WorkerPool pool;
  std::atomic<int> inner_total{0};
  pool.Run(4, [&](unsigned) {
    pool.Run(4, [&](unsigned) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(WorkerPool, ConcurrentSubmittersAllComplete) {
  WorkerPool pool;
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int run = 0; run < 10; ++run) {
        pool.Run(4, [&](unsigned) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  EXPECT_EQ(total.load(), 4 * 10 * 4);
}

TEST(ParallelForRangesPool, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 10001;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForRanges(8, kN, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ScopedWorkerBudgetScope, CapsAndRestoresDefaults) {
  unsigned unbudgeted = DefaultWorkerThreads();
  {
    ScopedWorkerBudget budget(2);
    EXPECT_EQ(ScopedWorkerBudget::Current(), 2u);
    EXPECT_LE(DefaultWorkerThreads(), 2u);
    {
      ScopedWorkerBudget inner(8);  // nested scopes only tighten
      EXPECT_EQ(ScopedWorkerBudget::Current(), 2u);
      ScopedWorkerBudget tighter(1);
      EXPECT_EQ(ScopedWorkerBudget::Current(), 1u);
    }
    EXPECT_EQ(ScopedWorkerBudget::Current(), 2u);
  }
  EXPECT_EQ(ScopedWorkerBudget::Current(), 0u);
  EXPECT_EQ(DefaultWorkerThreads(), unbudgeted);
}

TEST(ScopedWorkerBudgetScope, CapsSchedulerResolution) {
  ScopedWorkerBudget budget(3);
  SchedulerOptions defaulted;
  EXPECT_LE(WalkScheduler(defaulted).num_threads(), 3u);
  SchedulerOptions explicit_request;
  explicit_request.num_threads = 64;  // the budget owner still wins
  EXPECT_EQ(WalkScheduler(explicit_request).num_threads(), 3u);
}

TEST(SchedulerDispatch, PoolAndSpawnPerRunProduceIdenticalPaths) {
  Graph graph = GenerateErdosRenyi(256, 8.0, 71);
  AssignWeights(graph, WeightDistribution::kUniform, 0.0, 72);
  Node2VecWalk walk(2.0, 0.5, 16);
  auto starts = AllNodesAsStarts(graph);
  StepKernel step = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                   KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };
  SchedulerOptions pool_options;
  pool_options.num_threads = 8;
  SchedulerOptions spawn_options = pool_options;
  spawn_options.dispatch = WorkerDispatch::kSpawnPerRun;
  WalkResult pooled = WalkScheduler(pool_options).Run(graph, walk, starts, 1234, step);
  WalkResult spawned = WalkScheduler(spawn_options).Run(graph, walk, starts, 1234, step);
  EXPECT_EQ(pooled.paths, spawned.paths);
  EXPECT_EQ(pooled.cost.rng_draws, spawned.cost.rng_draws);
}

TEST(GlobalPool, RunOnWorkersReusesGlobalThreads) {
  std::mutex mutex;
  std::set<std::thread::id> all_ids;
  for (int run = 0; run < 20; ++run) {
    RunOnWorkers(4, [&](unsigned) {
      std::lock_guard<std::mutex> lock(mutex);
      all_ids.insert(std::this_thread::get_id());
    });
  }
  // 20 runs of width 4: fresh spawns would show up to 80 distinct ids; the
  // global pool plus the submitter is at most 5 here (other tests may have
  // grown the pool, but reuse keeps the union small and fixed).
  EXPECT_LE(all_ids.size(), WorkerPool::Global().thread_count() + 1);
}

}  // namespace
}  // namespace flexi
