// Distribution-correctness property tests: every sampling kernel must draw
// neighbors with probability exactly proportional to the transition weights
// (Eq. 1). Each sampler runs on the fan-graph fixture across a family of
// weight patterns (uniform, skewed, zeros, > warp-size rows) and is
// chi-square tested against the exact distribution at significance 0.001.
//
// This suite is the paper's correctness backbone: §3.3's claim that eRJS
// with an *inflated* bound preserves the distribution, and §3.2's claim
// that eRVS's ES-keys and jump technique are statistically equivalent to
// baseline reservoir sampling, are both verified here empirically.
#include <gtest/gtest.h>

#include <vector>

#include "src/sampling/alias.h"
#include "src/sampling/inverse_transform.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "tests/test_util.h"

namespace flexi {
namespace {

constexpr uint64_t kTrials = 60000;

class SamplerDistributionTest : public ::testing::TestWithParam<std::vector<float>> {
 protected:
  void RunCase(const std::function<uint32_t(FanGraph&, const WalkLogic&, KernelRng&)>& draw) {
    std::vector<float> weights = GetParam();
    FanGraph fan(weights);
    DeepWalk logic(1);
    auto p = fan.ExactProbabilities(logic);
    PhiloxStream stream(0xD157, 0);
    KernelRng rng(stream, fan.device.mem());
    auto result = SampleAndTest(static_cast<uint32_t>(weights.size()), p, kTrials,
                                [&](uint64_t) { return draw(fan, logic, rng); });
    EXPECT_TRUE(result.consistent)
        << "chi2=" << result.statistic << " dof=" << result.degrees_of_freedom;
  }
};

TEST_P(SamplerDistributionTest, AliasSampling) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return AliasStep(fan.ctx, logic, fan.query, rng).index;
  });
}

TEST_P(SamplerDistributionTest, InverseTransformSampling) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return InverseTransformStep(fan.ctx, logic, fan.query, rng).index;
  });
}

TEST_P(SamplerDistributionTest, RejectionSamplingExactMax) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return RejectionStep(fan.ctx, logic, fan.query, rng, std::nullopt).index;
  });
}

TEST_P(SamplerDistributionTest, BaselineReservoirSampling) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return ReservoirStep(fan.ctx, logic, fan.query, rng).index;
  });
}

TEST_P(SamplerDistributionTest, ERvsScanKeys) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return ERvsScanStep(fan.ctx, logic, fan.query, rng).index;
  });
}

TEST_P(SamplerDistributionTest, ERvsWithJump) {
  RunCase([](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return ERvsJumpStep(fan.ctx, logic, fan.query, rng).index;
  });
}

TEST_P(SamplerDistributionTest, ERjsWithTightBound) {
  std::vector<float> weights = GetParam();
  float max_w = *std::max_element(weights.begin(), weights.end());
  RunCase([max_w](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return ERjsStep(fan.ctx, logic, fan.query, rng, max_w).index;
  });
}

// §3.3's key claim: an upper bound strictly larger than the true max leaves
// the accepted-sample distribution unchanged (Eqs. 5-8).
TEST_P(SamplerDistributionTest, ERjsWithInflatedBound) {
  std::vector<float> weights = GetParam();
  float max_w = *std::max_element(weights.begin(), weights.end());
  RunCase([max_w](FanGraph& fan, const WalkLogic& logic, KernelRng& rng) {
    return ERjsStep(fan.ctx, logic, fan.query, rng, 3.0 * max_w).index;
  });
}

INSTANTIATE_TEST_SUITE_P(WeightPatterns, SamplerDistributionTest,
                         ::testing::ValuesIn(DistributionTestWeightSets()));

// All samplers agree on the degenerate single-neighbor case.
TEST(SamplerEdgeCases, SingleNeighborAlwaysSelected) {
  std::vector<float> weights = {2.5f};
  FanGraph fan(weights);
  DeepWalk logic(1);
  PhiloxStream stream(1, 0);
  KernelRng rng(stream, fan.device.mem());
  EXPECT_EQ(AliasStep(fan.ctx, logic, fan.query, rng).index, 0u);
  EXPECT_EQ(InverseTransformStep(fan.ctx, logic, fan.query, rng).index, 0u);
  EXPECT_EQ(RejectionStep(fan.ctx, logic, fan.query, rng, std::nullopt).index, 0u);
  EXPECT_EQ(ReservoirStep(fan.ctx, logic, fan.query, rng).index, 0u);
  EXPECT_EQ(ERvsScanStep(fan.ctx, logic, fan.query, rng).index, 0u);
  EXPECT_EQ(ERvsJumpStep(fan.ctx, logic, fan.query, rng).index, 0u);
  EXPECT_EQ(ERjsStep(fan.ctx, logic, fan.query, rng, 2.5).index, 0u);
}

// Every sampler reports a dead end when all transition weights are zero.
TEST(SamplerEdgeCases, AllZeroWeightsIsDeadEnd) {
  std::vector<float> weights = {0.0f, 0.0f, 0.0f};
  FanGraph fan(weights);
  DeepWalk logic(1);
  PhiloxStream stream(2, 0);
  KernelRng rng(stream, fan.device.mem());
  EXPECT_TRUE(AliasStep(fan.ctx, logic, fan.query, rng).dead_end);
  EXPECT_TRUE(InverseTransformStep(fan.ctx, logic, fan.query, rng).dead_end);
  EXPECT_TRUE(RejectionStep(fan.ctx, logic, fan.query, rng, std::nullopt).dead_end);
  EXPECT_TRUE(ReservoirStep(fan.ctx, logic, fan.query, rng).dead_end);
  EXPECT_TRUE(ERvsScanStep(fan.ctx, logic, fan.query, rng).dead_end);
  EXPECT_TRUE(ERvsJumpStep(fan.ctx, logic, fan.query, rng).dead_end);
  // eRJS with a positive (over-)bound must still detect the dead end via its
  // scan fallback rather than spinning forever.
  EXPECT_TRUE(ERjsStep(fan.ctx, logic, fan.query, rng, 1.0).dead_end);
}

TEST(SamplerEdgeCases, ZeroWeightNeighborsAreNeverSelected) {
  std::vector<float> weights = {0.0f, 1.0f, 0.0f, 2.0f};
  FanGraph fan(weights);
  DeepWalk logic(1);
  PhiloxStream stream(3, 0);
  KernelRng rng(stream, fan.device.mem());
  for (int t = 0; t < 2000; ++t) {
    uint32_t a = ERvsJumpStep(fan.ctx, logic, fan.query, rng).index;
    EXPECT_TRUE(a == 1 || a == 3);
    uint32_t b = ERjsStep(fan.ctx, logic, fan.query, rng, 2.0).index;
    EXPECT_TRUE(b == 1 || b == 3);
    uint32_t c = ReservoirStep(fan.ctx, logic, fan.query, rng).index;
    EXPECT_TRUE(c == 1 || c == 3);
  }
}

}  // namespace
}  // namespace flexi
