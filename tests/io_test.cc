// Tests for graph serialization (edge-list text and binary CSR).
#include "src/graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/generators.h"

namespace flexi {
namespace {

TEST(EdgeListIo, ParsesPlainEdges) {
  std::istringstream in(
      "# a comment\n"
      "0 1\n"
      "\n"
      "1 2\n"
      "2 0\n");
  Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.weighted());
}

TEST(EdgeListIo, ParsesWeightsAndLabels) {
  std::istringstream in(
      "0 1 2.5 3\n"
      "1 0 1.25 0\n");
  Graph g = ReadEdgeList(in);
  ASSERT_TRUE(g.weighted());
  ASSERT_TRUE(g.labeled());
  EXPECT_EQ(g.num_labels(), 4);  // max label 3 -> 4 classes
  EXPECT_FLOAT_EQ(g.PropertyWeight(g.EdgesBegin(0)), 2.5f);
  EXPECT_EQ(g.EdgeLabel(g.EdgesBegin(0)), 3);
}

TEST(EdgeListIo, RemapsSparseIds) {
  std::istringstream in(
      "100 7\n"
      "7 100\n"
      "100 9000\n");
  Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(EdgeListIo, DenseModeValidatesRange) {
  std::istringstream ok("0 1\n");
  EXPECT_EQ(ReadEdgeList(ok, 2).num_nodes(), 2u);
  std::istringstream bad("0 5\n");
  EXPECT_THROW(ReadEdgeList(bad, 2), std::runtime_error);
}

TEST(EdgeListIo, RejectsMalformedLines) {
  std::istringstream garbage("zero one\n");
  EXPECT_THROW(ReadEdgeList(garbage), std::runtime_error);
  std::istringstream truncated("0\n");
  EXPECT_THROW(ReadEdgeList(truncated), std::runtime_error);
  std::istringstream bad_label("0 1 1.0 999\n");
  EXPECT_THROW(ReadEdgeList(bad_label), std::runtime_error);
}

TEST(EdgeListIo, DeduplicatesRepeatedEdges) {
  std::istringstream in("0 1\n0 1\n0 1\n");
  EXPECT_EQ(ReadEdgeList(in, 2).num_edges(), 1u);
}

TEST(EdgeListIo, TextRoundTripPreservesStructure) {
  Graph original = GenerateErdosRenyi(100, 5.0, 3);
  AssignWeights(original, WeightDistribution::kUniform, 0.0, 4);
  AssignLabels(original, 5, 5);
  std::stringstream buffer;
  WriteEdgeList(original, buffer);
  Graph parsed = ReadEdgeList(buffer, original.num_nodes());
  ASSERT_EQ(parsed.num_nodes(), original.num_nodes());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    ASSERT_EQ(parsed.Degree(v), original.Degree(v)) << v;
    for (uint32_t i = 0; i < original.Degree(v); ++i) {
      EXPECT_EQ(parsed.Neighbor(v, i), original.Neighbor(v, i));
      EXPECT_NEAR(parsed.PropertyWeight(parsed.EdgesBegin(v) + i),
                  original.PropertyWeight(original.EdgesBegin(v) + i), 1e-4);
      EXPECT_EQ(parsed.EdgeLabel(parsed.EdgesBegin(v) + i),
                original.EdgeLabel(original.EdgesBegin(v) + i));
    }
  }
}

TEST(BinaryIo, RoundTripIsExact) {
  Graph original = GenerateRmat({9, 8, 0.57, 0.19, 0.19, 7});
  AssignWeights(original, WeightDistribution::kPareto, 1.5, 8);
  AssignLabels(original, 5, 9);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(original, buffer);
  Graph loaded = ReadBinary(buffer);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.num_labels(), original.num_labels());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    ASSERT_EQ(loaded.Degree(v), original.Degree(v));
    for (uint32_t i = 0; i < original.Degree(v); ++i) {
      EdgeId e = original.EdgesBegin(v) + i;
      EXPECT_EQ(loaded.Neighbor(v, i), original.Neighbor(v, i));
      EXPECT_FLOAT_EQ(loaded.PropertyWeight(e), original.PropertyWeight(e));
      EXPECT_EQ(loaded.EdgeLabel(e), original.EdgeLabel(e));
    }
  }
}

TEST(BinaryIo, UnweightedRoundTrip) {
  Graph original = GenerateCycle(16);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(original, buffer);
  Graph loaded = ReadBinary(buffer);
  EXPECT_FALSE(loaded.weighted());
  EXPECT_FALSE(loaded.labeled());
  EXPECT_EQ(loaded.num_edges(), 16u);
}

TEST(BinaryIo, RejectsWrongMagicAndTruncation) {
  std::stringstream junk(std::ios::in | std::ios::out | std::ios::binary);
  junk << "NOTAGRPH plus trailing garbage";
  EXPECT_THROW(ReadBinary(junk), std::runtime_error);

  Graph g = GenerateCycle(4);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(g, buffer);
  std::string bytes = buffer.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadBinary(cut), std::runtime_error);
}

TEST(FileIo, FileHelpersWorkAndReportMissingFiles) {
  Graph g = GenerateErdosRenyi(50, 4.0, 11);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 12);
  const std::string path = "/tmp/flexi_io_test.bin";
  WriteBinaryFile(g, path);
  Graph loaded = ReadBinaryFile(path);
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_THROW(ReadBinaryFile("/nonexistent/dir/file.bin"), std::runtime_error);
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/dir/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace flexi
