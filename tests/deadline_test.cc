// Deadline-aware serving (ctest -L robustness): wire v3 deadline framing,
// the three shedding stages (decode / flush / mid-run cancellation), the
// bit-identity contract of cooperative cancellation (a cancelled batch
// never perturbs later batches' paths or ids), client request timeouts
// with retry classification, and graceful drain. docs/SERVING.md
// "Deadlines, retries, and drain" is the prose contract this enforces.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/net/batch_coalescer.h"
#include "src/net/walk_client.h"
#include "src/net/walk_server.h"
#include "src/net/wire.h"
#include "src/sampling/inverse_transform.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walker/path_arena.h"
#include "src/walker/walk_service.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

Graph TestGraph() {
  Graph g = GenerateErdosRenyi(256, 8.0, 71);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 72);
  return g;
}

StepKernel ItsStep() {
  return [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q, KernelRng& rng) {
    return InverseTransformStep(ctx, l, q, rng);
  };
}

WalkService::Options ItsOptions(uint64_t seed, unsigned threads = 4) {
  WalkService::Options options;
  options.seed = seed;
  options.scheduler.num_threads = threads;
  return options;
}

std::vector<NodeId> Range(NodeId begin, NodeId end) {
  std::vector<NodeId> starts;
  for (NodeId v = begin; v < end; ++v) {
    starts.push_back(v);
  }
  return starts;
}

// A served FlexiWalker stack mirroring net_test's ServedStack, with the
// walk length configurable so the mid-run cancellation test can make a
// batch genuinely long-running.
struct DeadlineStack {
  Graph graph;
  Node2VecWalk walk;
  FlexiWalkerOptions engine_options;
  std::unique_ptr<WalkService> service;
  std::unique_ptr<WalkServer> server;

  explicit DeadlineStack(double coalesce_ms, BatchCoalescer::Options coalescer_extra = {},
                         WalkServer::Options server_base = {}, uint32_t walk_length = 12)
      : walk(2.0, 0.5, walk_length) {
    graph = TestGraph();
    engine_options.edge_cost_ratio = 4.0;  // pin the selector: no profiling noise
    engine_options.host_threads = 4;
    service = MakeFlexiWalkerService(graph, walk, engine_options, /*seed=*/99,
                                     /*pipeline_depth=*/1);
    WalkServer::Options server_options = server_base;
    server_options.port = 0;
    server_options.backlog = 64;
    server_options.coalescer = coalescer_extra;
    server_options.coalescer.max_delay_ms = coalesce_ms;
    server.reset(new WalkServer(*service, graph.num_nodes(), server_options));
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
  }

  ~DeadlineStack() {
    server->Stop();
    service->Shutdown();
  }
};

void ExpectOutstandingDrains(const BatchCoalescer& coalescer,
                             std::chrono::seconds deadline = std::chrono::seconds(10)) {
  auto give_up = std::chrono::steady_clock::now() + deadline;
  while (coalescer.outstanding_queries() != 0) {
    if (std::chrono::steady_clock::now() > give_up) {
      FAIL() << "coalescer still holds " << coalescer.outstanding_queries()
             << " outstanding queries after a shed";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SUCCEED();
}

// ---------------------------------------------------------------- wire v3 --

TEST(WireV3, DeadlineRoundTripsThroughV3Frames) {
  WireRequest request{7, 3, Range(10, 14)};
  request.deadline_us = 250'000;
  std::vector<uint8_t> bytes;
  AppendRequestFrame(bytes, request);
  // Header = u32 magic + u32 payload_len; the payload leads with the type.
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(bytes[8], static_cast<uint8_t>(FrameType::kRequestV3));

  WireFrame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), kDefaultMaxFramePayload, frame, consumed),
            DecodeStatus::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(frame.type, FrameType::kRequestV3);
  EXPECT_EQ(frame.request.tag, 7u);
  EXPECT_EQ(frame.request.workload_id, 3u);
  EXPECT_EQ(frame.request.deadline_us, 250'000u);
  EXPECT_EQ(frame.request.starts, Range(10, 14));
}

TEST(WireV3, VersionSelectionIsTheOldestCarrier) {
  // Deadline-free traffic must stay byte-compatible with pre-v3 servers:
  // workload 0 and no deadline is a v1 frame, routing alone a v2 frame, and
  // any deadline forces v3 — even on the default workload.
  WireRequest v1{1, 0, {5, 6}};
  std::vector<uint8_t> v1_bytes;
  AppendRequestFrame(v1_bytes, v1);
  EXPECT_EQ(v1_bytes[8], static_cast<uint8_t>(FrameType::kRequest));

  WireRequest v2{1, 4, {5, 6}};
  std::vector<uint8_t> v2_bytes;
  AppendRequestFrame(v2_bytes, v2);
  EXPECT_EQ(v2_bytes[8], static_cast<uint8_t>(FrameType::kRequestV2));

  WireRequest v3{1, 0, {5, 6}};
  v3.deadline_us = 1;
  std::vector<uint8_t> v3_bytes;
  AppendRequestFrame(v3_bytes, v3);
  EXPECT_EQ(v3_bytes[8], static_cast<uint8_t>(FrameType::kRequestV3));
  WireFrame frame;
  size_t consumed = 0;
  ASSERT_EQ(
      DecodeFrame(v3_bytes.data(), v3_bytes.size(), kDefaultMaxFramePayload, frame, consumed),
      DecodeStatus::kFrame);
  EXPECT_EQ(frame.request.workload_id, 0u);
  EXPECT_EQ(frame.request.deadline_us, 1u);
}

TEST(WireV3, TruncatedV3FramesNeedMoreAtEveryPrefix) {
  WireRequest request{9, 2, {1, 2, 3}};
  request.deadline_us = 1000;
  std::vector<uint8_t> bytes;
  AppendRequestFrame(bytes, request);
  for (size_t prefix = 0; prefix < bytes.size(); ++prefix) {
    WireFrame frame;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes.data(), prefix, kDefaultMaxFramePayload, frame, consumed),
              DecodeStatus::kNeedMore)
        << "prefix " << prefix;
  }
}

TEST(WireV3, CountPayloadMismatchIsMalformed) {
  WireRequest request{9, 2, {1, 2, 3}};
  request.deadline_us = 1000;
  std::vector<uint8_t> bytes;
  AppendRequestFrame(bytes, request);
  // Claim one more start than the payload holds: the exact-length check
  // must reject instead of reading past the buffer.
  size_t count_offset = 8 + 1 + 8 + 4 + 8;  // header, type, tag, workload_id, deadline
  bytes[count_offset] = 4;
  WireFrame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), kDefaultMaxFramePayload, frame, consumed),
            DecodeStatus::kMalformed);
}

// ------------------------------------------------------------ decode shed --

TEST(DeadlineShedding, ExpiredAtDecodeIsRejectedBeforeAdmission) {
  BatchCoalescer::Options coalescer;
  coalescer.max_outstanding_queries = 8;
  coalescer.overflow = BatchCoalescer::OverflowPolicy::kBlock;
  WalkServer::Options base;
  base.event_loop = false;  // blocking reader: admission stalls the decode loop
  DeadlineStack stack(/*coalesce_ms=*/80.0, coalescer, base);

  // One send carrying three pipelined frames. The first fills the admission
  // bound; the second (deadline-free) blocks the reader in Enqueue until
  // the first batch completes; by the time the third decodes, its 20 ms
  // budget — anchored at recv, when its bytes actually arrived — is long
  // gone, so it must be shed at decode, before admission.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(stack.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::vector<uint8_t> bytes;
  AppendRequestFrame(bytes, {1, 0, Range(0, 8)});
  AppendRequestFrame(bytes, {2, 0, {1}});
  WireRequest late{3, 0, {2}};
  late.deadline_us = 20'000;
  AppendRequestFrame(bytes, late);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0), static_cast<ssize_t>(bytes.size()));

  std::map<uint64_t, WireFrame> answers;
  FrameDecoder decoder;
  std::vector<uint8_t> chunk(64 << 10);
  while (answers.size() < 3) {
    ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    ASSERT_GT(n, 0) << "server closed before answering all three requests";
    decoder.Append(chunk.data(), static_cast<size_t>(n));
    WireFrame frame;
    while (decoder.Next(frame) == DecodeStatus::kFrame) {
      uint64_t tag = frame.type == FrameType::kError ? frame.error.tag : frame.response.tag;
      answers.emplace(tag, std::move(frame));
    }
  }
  ::close(fd);

  EXPECT_EQ(answers[1].type, FrameType::kResponse);
  EXPECT_EQ(answers[2].type, FrameType::kResponse);
  ASSERT_EQ(answers[3].type, FrameType::kError);
  EXPECT_EQ(answers[3].error.code, WireErrorCode::kDeadlineExceeded);
  ExpectOutstandingDrains(stack.server->coalescer());
}

// ------------------------------------------------------------- flush shed --

TEST(DeadlineShedding, LapsedAtFlushIsShedAndSurvivorsStayBitIdentical) {
  DeadlineStack stack(/*coalesce_ms=*/150.0);
  WalkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));

  // Both requests land in the same pending window; the first's 30 ms budget
  // lapses long before the 150 ms flush, so the flusher drops it — and
  // because a flush-shed member never consumed global query ids, the
  // survivor's rows must equal a one-shot engine run over the survivor's
  // starts alone.
  std::future<WalkClient::Result> doomed =
      client.Submit(Range(5, 7), /*workload_id=*/0, /*deadline_us=*/30'000);
  std::vector<NodeId> survivor_starts = Range(40, 45);
  std::future<WalkClient::Result> survivor = client.Submit(survivor_starts);

  try {
    doomed.get();
    FAIL() << "a request whose deadline lapses in the pending window must be shed at flush";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDeadlineExceeded);
  }
  WalkClient::Result survived = survivor.get();
  EXPECT_EQ(survived.first_query_id, 0u);  // the shed request consumed no ids
  WalkResult reference =
      FlexiWalkerEngine(stack.engine_options).Run(stack.graph, stack.walk, survivor_starts, 99);
  EXPECT_EQ(survived.paths, reference.paths);

  // The shed is visible through the stats frame, stage-labeled.
  std::string stats = client.FetchStats();
  EXPECT_NE(stats.find("flexi_requests_deadline_exceeded_total"), std::string::npos);
  EXPECT_NE(stats.find("stage=\"flush\""), std::string::npos);
  client.Close();
  ExpectOutstandingDrains(stack.server->coalescer());
}

// ----------------------------------------------------- mid-run cancellation --

TEST(DeadlineShedding, AllDeadlinedBatchIsCancelledMidRun) {
  // A genuinely long batch: 4000-step node2vec over 1024 queries takes far
  // longer than the 15 ms budget, so the request survives decode and flush
  // (window 0: it flushes immediately) and must be cancelled cooperatively
  // mid-run.
  DeadlineStack stack(/*coalesce_ms=*/0.0, {}, {}, /*walk_length=*/4000);
  WalkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));

  std::vector<NodeId> starts;
  for (NodeId i = 0; i < 1024; ++i) {
    starts.push_back(i % stack.graph.num_nodes());
  }
  auto begin = std::chrono::steady_clock::now();
  try {
    client.Walk(std::move(starts), /*workload_id=*/0, /*deadline_us=*/15'000);
    FAIL() << "a batch whose every member's deadline lapsed mid-run must not complete";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDeadlineExceeded);
  }
  auto elapsed = std::chrono::steady_clock::now() - begin;
  // The answer arrives at the deadline (plus one pass-boundary poll), not
  // after the full walk. Minutes of slack for sanitizer builds — the point
  // is it cannot be the uncancelled completion.
  EXPECT_LT(elapsed, std::chrono::seconds(30));

  // The server stays healthy: cancellation released every admission slot,
  // and a fresh deadline-free request completes normally.
  EXPECT_EQ(client.Walk({1}).num_queries, 1u);
  std::string stats = client.FetchStats();
  EXPECT_NE(stats.find("flexi_batches_cancelled_total"), std::string::npos);
  client.Close();
  ExpectOutstandingDrains(stack.server->coalescer());
}

// ----------------------------------------------------- cancellation parity --

TEST(Cancellation, CancelledBatchLeavesLaterBatchesBitIdentical) {
  // Global query ids are consumed at Submit; cancellation truncates
  // delivery only. A service that cancelled its first batch must produce a
  // second batch bit-identical to a service that ran the first to the end.
  Graph graph = TestGraph();
  Node2VecWalk walk(2.0, 0.5, 10);
  WalkService reference(graph, walk, ItsOptions(42), ItsStep());
  BatchResult ref_first = reference.Submit({Range(0, 64)}).get();
  BatchResult ref_second = reference.Submit({Range(64, 128)}).get();

  WalkService cancelled_service(graph, walk, ItsOptions(42), ItsStep());
  auto cancel = std::make_shared<std::atomic<bool>>(true);  // cancelled before it starts
  PathArena arena(64, cancelled_service.path_stride());
  BatchResult first = cancelled_service.SubmitInto({Range(0, 64)}, arena.view(), cancel).get();
  EXPECT_EQ(first.first_query_id, ref_first.first_query_id);
  BatchResult second = cancelled_service.Submit({Range(64, 128)}).get();
  EXPECT_EQ(second.first_query_id, ref_second.first_query_id);
  EXPECT_EQ(second.walk.paths, ref_second.walk.paths);
  cancelled_service.Shutdown();
  reference.Shutdown();
}

// --------------------------------------------------------- client timeouts --

TEST(ClientRetry, RequestTimeoutFiresAndRetriesAreCounted) {
  // An accept-only listener: connections succeed, requests are never
  // answered — every attempt must fail on the client's own timer.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);

  WalkClient::Options options;
  options.request_timeout_ms = 50;
  options.max_retries = 2;
  options.backoff.base_ms = 20;
  options.backoff.max_ms = 40;
  WalkClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", port));
  auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW(client.Walk({1}), RequestTimeoutError);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_EQ(client.retries_attempted(), 2u);
  // 3 attempts x 50 ms timer, plus two jittered backoffs whose floors are
  // 10 and 20 ms: anything faster means a timer or a backoff never ran.
  EXPECT_GE(elapsed.count(), 170);
  client.Close();
  ::close(listener);
}

TEST(ClientRetry, PermanentErrorsAreNeverRetried) {
  DeadlineStack stack(/*coalesce_ms=*/0.5);
  WalkClient::Options options;
  options.max_retries = 3;
  options.backoff.base_ms = 1;
  WalkClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
  try {
    client.Walk({stack.graph.num_nodes() + 7});
    FAIL() << "an out-of-range start must fail";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kNodeOutOfRange);
  }
  // Re-sending identical bytes reproduces the identical answer; retrying a
  // permanent error would only multiply load, so none may have run.
  EXPECT_EQ(client.retries_attempted(), 0u);
  // The connection survives the error and serves the next request.
  EXPECT_EQ(client.Walk({2}).num_queries, 1u);
  client.Close();
}

// ------------------------------------------------------------------- drain --

TEST(Drain, BeginDrainRejectsNewRequestsAndFinishesAdmittedWork) {
  DeadlineStack stack(/*coalesce_ms=*/200.0);
  WalkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
  std::future<WalkClient::Result> admitted = client.Submit(Range(0, 4));
  // Let the admitted request reach the coalescer's pending window before
  // the drain begins; it sits there until the 200 ms flush.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  std::thread drainer([&] { stack.server->BeginDrain(std::chrono::seconds(10)); });
  while (!stack.server->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // New requests on existing connections are answered kDraining...
  std::future<WalkClient::Result> rejected = client.Submit({1});
  try {
    rejected.get();
    FAIL() << "a request submitted during drain must be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDraining);
  }
  // ...while already-admitted work runs to completion and is delivered.
  EXPECT_EQ(admitted.get().num_queries, 4u);
  drainer.join();
  EXPECT_TRUE(stack.server->draining());
  client.Close();
}

}  // namespace
}  // namespace flexi
