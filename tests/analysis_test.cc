// Tests for the walk-analysis module, including the statistical
// cross-check that first-order unweighted walks converge to the
// degree-proportional stationary distribution.
#include "src/analysis/walk_analysis.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walks/deepwalk.h"
#include "src/walks/ppr.h"

namespace flexi {
namespace {

WalkResult MakeResult(std::vector<std::vector<NodeId>> paths, uint32_t stride) {
  WalkResult result;
  result.path_stride = stride;
  result.num_queries = paths.size();
  for (const auto& path : paths) {
    for (uint32_t s = 0; s < stride; ++s) {
      result.paths.push_back(s < path.size() ? path[s] : kInvalidNode);
    }
  }
  return result;
}

TEST(Analysis, VisitCountsAndFrequencies) {
  WalkResult result = MakeResult({{0, 1, 2}, {1, 1, kInvalidNode}}, 3);
  auto counts = VisitCounts(result, 4);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  auto freq = VisitFrequencies(result, 4);
  EXPECT_DOUBLE_EQ(freq[1], 0.6);
}

TEST(Analysis, FrequenciesOfEmptyResultAreZero) {
  WalkResult empty;
  empty.path_stride = 4;
  auto freq = VisitFrequencies(empty, 3);
  EXPECT_EQ(freq, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(Analysis, TransitionCountsMatchPaths) {
  Graph graph = GenerateCycle(4);  // 0->1->2->3->0
  WalkResult result = MakeResult({{0, 1, 2}, {2, 3, 0}}, 3);
  TransitionCounts tc = CountTransitions(graph, result);
  EXPECT_EQ(tc.total_steps, 4u);
  // Each cycle edge except 1->2 / 3->0 is traversed once; count layout is
  // per-edge in CSR order (one out-edge per node).
  EXPECT_EQ(tc.edge_counts[graph.EdgesBegin(0)], 1u);
  EXPECT_EQ(tc.edge_counts[graph.EdgesBegin(1)], 1u);
  EXPECT_EQ(tc.edge_counts[graph.EdgesBegin(2)], 1u);
  EXPECT_EQ(tc.edge_counts[graph.EdgesBegin(3)], 1u);
}

TEST(Analysis, CooccurrenceWindowCounting) {
  WalkResult result = MakeResult({{0, 1, 2, 3}}, 4);
  std::vector<NodePair> top;
  // Window 1: pairs (0,1) (1,2) (2,3); window 2 adds (0,2) (1,3).
  EXPECT_EQ(CountCooccurrences(result, 1, 10, &top), 3u);
  EXPECT_EQ(CountCooccurrences(result, 2, 10, &top), 5u);
  EXPECT_EQ(top.size(), 5u);
  for (const NodePair& pair : top) {
    EXPECT_EQ(pair.count, 1u);
  }
}

TEST(Analysis, CooccurrenceTopKOrdersByFrequency) {
  WalkResult result = MakeResult({{0, 1, 0, 1, 0, 1}, {2, 3, kInvalidNode}}, 6);
  std::vector<NodePair> top;
  CountCooccurrences(result, 1, 1, &top);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].a, 0u);
  EXPECT_EQ(top[0].b, 1u);
  EXPECT_EQ(top[0].count, 3u);
}

TEST(Analysis, DeepWalkConvergesToDegreeStationary) {
  // On a symmetric unweighted graph, the first-order walk's occupancy
  // converges to pi(v) = d(v) / 2|E|; the empirical L1 distance after many
  // long walks must be small. This is an end-to-end statistical validation
  // of the whole engine stack.
  GraphBuilder builder(64);
  PhiloxStream rng(5, 0);
  for (int e = 0; e < 400; ++e) {
    NodeId a = rng.NextBounded(64);
    NodeId b = rng.NextBounded(64);
    if (a != b) {
      builder.AddUndirectedEdge(a, b);
    }
  }
  for (NodeId v = 0; v + 1 < 64; ++v) {
    builder.AddUndirectedEdge(v, v + 1);  // ensure connectivity
  }
  Graph graph = builder.Build();
  DeepWalk walk(200);
  FlexiWalkerEngine engine;
  auto starts = AllNodesAsStarts(graph);
  WalkResult result = engine.Run(graph, walk, starts, 17);
  auto freq = VisitFrequencies(result, graph.num_nodes());
  EXPECT_LT(L1DistanceToDegreeStationary(graph, freq), 0.05);
}

TEST(Analysis, PprScoresPeakNearSourceNeighborhood) {
  Graph graph = GenerateErdosRenyi(300, 8.0, 21);
  PersonalizedPageRankWalk walk(0.25, 300);
  FlexiWalkerEngine engine;
  std::vector<NodeId> starts(64, 42);  // 64 walkers from node 42
  WalkResult result = engine.Run(graph, walk, starts, 23);
  auto scores = EstimatePprScores(result, graph.num_nodes());
  // The source neighborhood's mass must exceed a random control
  // neighborhood of comparable size.
  double source_mass = scores[42];
  for (NodeId u : graph.Neighbors(42)) {
    source_mass += scores[u];
  }
  double control_mass = scores[7];
  for (NodeId u : graph.Neighbors(7)) {
    control_mass += scores[u];
  }
  EXPECT_GT(source_mass, 2.0 * control_mass);
}

}  // namespace
}  // namespace flexi
