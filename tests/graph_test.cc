// Unit tests for the CSR graph, builder, generators, and weight/label
// initialization.
#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/int8_weights.h"
#include "src/metrics/stats.h"

namespace flexi {
namespace {

TEST(GraphBuilder, BuildsSortedDedupedCsr) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);  // duplicate
  builder.AddEdge(3, 0);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Neighbor(0, 0), 1u);
  EXPECT_EQ(g.Neighbor(0, 1), 2u);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(GraphBuilder, UndirectedAddsBothDirections) {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(2, 2);  // self loop: added once
  Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, HasEdgeBinarySearch) {
  Graph g = GenerateComplete(6);
  for (NodeId v = 0; v < 6; ++v) {
    for (NodeId u = 0; u < 6; ++u) {
      EXPECT_EQ(g.HasEdge(v, u), v != u);
    }
  }
}

TEST(Graph, RejectsMalformedCsr) {
  std::vector<EdgeId> row_ptr = {0, 2};
  std::vector<NodeId> col_idx = {1};  // row_ptr.back() != col size
  EXPECT_THROW(Graph(std::move(row_ptr), std::move(col_idx)), std::invalid_argument);
}

TEST(Graph, WeightAndLabelSizeValidation) {
  Graph g = GenerateCycle(5);
  EXPECT_THROW(g.SetPropertyWeights(std::vector<float>(3, 1.0f)), std::invalid_argument);
  EXPECT_THROW(g.SetEdgeLabels(std::vector<uint8_t>(3, 0), 5), std::invalid_argument);
}

TEST(Generators, CycleAndStarShapes) {
  Graph cycle = GenerateCycle(10);
  EXPECT_EQ(cycle.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(cycle.Degree(v), 1u);
    EXPECT_EQ(cycle.Neighbor(v, 0), (v + 1) % 10);
  }
  Graph star = GenerateStar(7);
  EXPECT_EQ(star.Degree(0), 7u);
  for (NodeId leaf = 1; leaf <= 7; ++leaf) {
    EXPECT_EQ(star.Degree(leaf), 1u);
  }
}

TEST(Generators, ErdosRenyiHasNoSinksAndRoughAvgDegree) {
  Graph g = GenerateErdosRenyi(1000, 8.0, 3);
  EXPECT_EQ(g.num_nodes(), 1000u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.Degree(v), 1u);
  }
  double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 10.0);
}

TEST(Generators, RmatIsSkewedAndSinkFree) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  Graph g = GenerateRmat(params);
  EXPECT_EQ(g.num_nodes(), 1024u);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.Degree(v), 1u);
    max_degree = std::max(max_degree, g.Degree(v));
  }
  double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  // Power-law skew: the hub is far above the average degree.
  EXPECT_GT(max_degree, 10 * avg);
}

TEST(Generators, RmatDeterministicForSeed) {
  RmatParams params;
  params.scale = 8;
  params.seed = 99;
  Graph a = GenerateRmat(params);
  Graph b = GenerateRmat(params);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v));
  }
}

TEST(Weights, UniformInPaperRange) {
  Graph g = GenerateErdosRenyi(200, 6.0, 5);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 17);
  ASSERT_TRUE(g.weighted());
  RunningStats stats;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    float h = g.PropertyWeight(e);
    EXPECT_GE(h, 1.0f);
    EXPECT_LT(h, 5.0f);
    stats.Add(h);
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Weights, ParetoSkewIncreasesWithLowerAlpha) {
  Graph g1 = GenerateErdosRenyi(500, 8.0, 5);
  Graph g2 = GenerateErdosRenyi(500, 8.0, 5);
  AssignWeights(g1, WeightDistribution::kPareto, 1.0, 21);
  AssignWeights(g2, WeightDistribution::kPareto, 4.0, 21);
  auto cv = [](const Graph& g) {
    RunningStats s;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      s.Add(g.PropertyWeight(e));
    }
    return s.CoefficientOfVariationPct();
  };
  EXPECT_GT(cv(g1), cv(g2));
}

TEST(Weights, DegreeBasedEqualsNeighborDegree) {
  Graph g = GenerateErdosRenyi(100, 5.0, 9);
  AssignWeights(g, WeightDistribution::kDegreeBased, 0.0, 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t i = 0; i < g.Degree(v); ++i) {
      NodeId u = g.Neighbor(v, i);
      EXPECT_FLOAT_EQ(g.PropertyWeight(g.EdgesBegin(v) + i),
                      static_cast<float>(std::max<uint32_t>(g.Degree(u), 1)));
    }
  }
}

TEST(Weights, UnweightedLeavesImplicitOnes) {
  Graph g = GenerateCycle(5);
  AssignWeights(g, WeightDistribution::kUnweighted, 0.0, 1);
  EXPECT_FALSE(g.weighted());
  EXPECT_FLOAT_EQ(g.PropertyWeight(0), 1.0f);
}

TEST(Labels, UniformOverRange) {
  Graph g = GenerateErdosRenyi(300, 8.0, 13);
  AssignLabels(g, 5, 71);
  ASSERT_TRUE(g.labeled());
  std::vector<uint64_t> counts(5, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_LT(g.EdgeLabel(e), 5);
    ++counts[g.EdgeLabel(e)];
  }
  std::vector<double> expected(5, 0.2);
  EXPECT_TRUE(ChiSquareGoodnessOfFit(counts, expected).consistent);
}

TEST(Datasets, RegistryHasAllTenInPaperOrder) {
  auto all = AllDatasets();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0].name, "YT");
  EXPECT_EQ(all[9].name, "FS");
  // Paper-scale edge counts increase overall (Table 1 ordering).
  EXPECT_LT(all[0].paper_edges, all[9].paper_edges);
  EXPECT_THROW(DatasetByName("nope"), std::out_of_range);
  EXPECT_EQ(DatasetByName("EU").full_name, "EU-2015");
}

TEST(Datasets, LoadProducesWeightedLabeledGraph) {
  Graph g = LoadDataset(DatasetByName("YT"), WeightDistribution::kUniform);
  EXPECT_TRUE(g.weighted());
  EXPECT_TRUE(g.labeled());
  EXPECT_EQ(g.num_labels(), 5);
  EXPECT_GT(g.num_edges(), g.num_nodes());
}

TEST(Datasets, FullScaleFootprintTracksPaperSizes) {
  uint64_t yt = FullScaleFootprintBytes(DatasetByName("YT"));
  uint64_t sk = FullScaleFootprintBytes(DatasetByName("SK"));
  EXPECT_GT(sk, yt);
  // SK at full scale (3.6B edges) fills most of a 48 GB device with the
  // resident adjacency+weights+labels alone — any multi-gigabyte auxiliary
  // structure (NextDoor's transit sort) then tips it over: the
  // OOM-reproduction premise.
  EXPECT_GT(sk, 28ull << 30);
}

TEST(Int8Weights, QuantizationErrorBounded) {
  Graph g = GenerateErdosRenyi(200, 8.0, 77);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 78);
  Int8WeightStore store = Int8WeightStore::Quantize(g);
  ASSERT_FALSE(store.empty());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(store.Weight(e), g.PropertyWeight(e), store.scale() / 2.0f + 1e-6f);
  }
  EXPECT_EQ(store.size_bytes(), g.num_edges());
}

TEST(Int8Weights, EmptyForUnweightedGraph) {
  Graph g = GenerateCycle(4);
  EXPECT_TRUE(Int8WeightStore::Quantize(g).empty());
}

TEST(Int8Weights, ConstantWeightsQuantizeExactly) {
  Graph g = GenerateCycle(4);
  g.SetPropertyWeights(std::vector<float>(4, 2.5f));
  Int8WeightStore store = Int8WeightStore::Quantize(g);
  for (EdgeId e = 0; e < 4; ++e) {
    EXPECT_FLOAT_EQ(store.Weight(e), 2.5f);
  }
}

TEST(Graph, MemoryFootprintAccounting) {
  Graph g = GenerateCycle(8);
  size_t base = g.MemoryFootprintBytes();
  AssignWeights(g, WeightDistribution::kUniform, 0.0, 1);
  EXPECT_EQ(g.MemoryFootprintBytes(), base + 8 * sizeof(float));
}

}  // namespace
}  // namespace flexi
