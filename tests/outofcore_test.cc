// Out-of-core execution tier tests: block-store round-trips, GraphCache
// pin/evict semantics, and the determinism contract — block-cached walks
// are bit-identical to the in-memory engine across every cache size, thread
// count, and wavefront width (out_of_core.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "src/graph/block_store.h"
#include "src/graph/generators.h"
#include "src/graph/graph_cache.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walker/out_of_core.h"
#include "src/walks/deepwalk.h"
#include "src/walks/node2vec.h"
#include "src/walks/ppr.h"

namespace flexi {
namespace {

// Each test writes its own file so parallel ctest shards never collide.
std::string BlockFilePath(const char* tag) {
  return std::string("/tmp/flexi_outofcore_test_") + tag + ".blk";
}

Graph TestGraph(NodeId nodes = 500, double degree = 6.0, uint64_t seed = 13) {
  Graph g = GenerateErdosRenyi(nodes, degree, seed);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, seed + 1);
  return g;
}

std::vector<NodeId> AllStarts(const Graph& g) {
  std::vector<NodeId> starts(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    starts[v] = v;
  }
  return starts;
}

// ---------------------------------------------------------- block store --

TEST(BlockStore, RoundTripReassemblesTheGraph) {
  Graph g = TestGraph(300, 5.0, 7);
  AssignLabels(g, 4, 8);
  AssignTimestamps(g, 100.0f, 9);
  const std::string path = BlockFilePath("roundtrip");
  size_t blocks = PartitionToBlockFile(g, path, kMinBlockBytes);
  ASSERT_GT(blocks, 1u) << "graph must span several blocks for the test to bite";

  for (bool map : {false, true}) {
    BlockStore store = BlockStore::Open(path, map);
    EXPECT_EQ(store.num_nodes(), g.num_nodes());
    EXPECT_EQ(store.num_edges(), g.num_edges());
    EXPECT_EQ(store.num_blocks(), blocks);
    EXPECT_TRUE(store.weighted());
    EXPECT_TRUE(store.labeled());
    EXPECT_TRUE(store.temporal());
    EXPECT_EQ(store.max_degree(), g.MaxDegree());
    ASSERT_EQ(store.row_offsets().size(), g.num_nodes() + 1u);

    // Blocks tile [0, num_nodes) in order, and every node maps back to the
    // block that holds it.
    NodeId covered = 0;
    for (size_t b = 0; b < store.num_blocks(); ++b) {
      EXPECT_EQ(store.block(b).first_node, covered);
      covered += store.block(b).node_count;
    }
    EXPECT_EQ(covered, g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const BlockMeta& meta = store.block(store.BlockOf(v));
      EXPECT_GE(v, meta.first_node);
      EXPECT_LT(v, meta.first_node + meta.node_count);
    }

    // Every row read through a block view matches the original graph.
    BlockData data;
    for (size_t b = 0; b < store.num_blocks(); ++b) {
      store.ReadBlock(b, data);
      Graph view = store.MakeBlockView(b, data);
      const BlockMeta& meta = store.block(b);
      for (NodeId v = meta.first_node; v < meta.first_node + meta.node_count; ++v) {
        ASSERT_EQ(view.Degree(v), g.Degree(v)) << "node " << v;
        for (uint32_t i = 0; i < g.Degree(v); ++i) {
          EXPECT_EQ(view.Neighbor(v, i), g.Neighbor(v, i));
          EdgeId e = g.EdgesBegin(v) + i;
          EXPECT_EQ(view.PropertyWeight(e), g.PropertyWeight(e));
          EXPECT_EQ(view.EdgeLabel(e), g.EdgeLabel(e));
          EXPECT_EQ(view.EdgeTimestamp(e), g.EdgeTimestamp(e));
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(BlockStore, RejectsBudgetBelowMinimum) {
  Graph g = TestGraph(64, 4.0, 3);
  EXPECT_THROW(PartitionToBlockFile(g, BlockFilePath("tiny"), kMinBlockBytes - 1),
               std::invalid_argument);
}

TEST(BlockStore, OversizedRowGetsItsOwnBlock) {
  // A hub whose single row exceeds the budget must still land in exactly
  // one (oversized) block rather than being split or dropped.
  Graph g = GenerateStar(600);  // hub 0 has 600 out-edges = 2400 B > 1 KiB
  const std::string path = BlockFilePath("hub");
  PartitionToBlockFile(g, path, kMinBlockBytes);
  BlockStore store = BlockStore::Open(path);
  const BlockMeta& hub = store.block(store.BlockOf(0));
  EXPECT_GE(hub.edge_count, 600u);
  EXPECT_EQ(store.BlockOf(0), 0u);
  BlockData data;
  store.ReadBlock(store.BlockOf(0), data);
  Graph view = store.MakeBlockView(store.BlockOf(0), data);
  EXPECT_EQ(view.Degree(0), g.Degree(0));
  std::remove(path.c_str());
}

// ---------------------------------------------------------- graph cache --

TEST(GraphCache, PinsEvictsAndCounts) {
  Graph g = TestGraph(400, 5.0, 21);
  const std::string path = BlockFilePath("cache");
  size_t blocks = PartitionToBlockFile(g, path, kMinBlockBytes);
  ASSERT_GE(blocks, 4u);
  BlockStore store = BlockStore::Open(path);
  GraphCache cache(&store, 2);

  const Graph& b0 = cache.Acquire(0);
  EXPECT_EQ(b0.num_nodes(), g.num_nodes());  // views share the global node space
  EXPECT_TRUE(cache.IsResident(0));
  cache.Acquire(1);
  // Both slots pinned: a third block has nowhere to go.
  EXPECT_THROW(cache.Acquire(2), std::runtime_error);
  cache.Release(0);
  cache.Acquire(2);  // evicts block 0 (the only unpinned slot)
  EXPECT_FALSE(cache.IsResident(0));
  EXPECT_TRUE(cache.IsResident(2));
  // Re-acquiring a resident block is a hit, not a load.
  uint64_t loads_before = cache.stats().loads;
  cache.Acquire(2);
  EXPECT_EQ(cache.stats().loads, loads_before);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().bytes_read, 0u);
  // Releasing an unpinned block is a caller bug.
  EXPECT_THROW(cache.Release(0), std::logic_error);
  std::remove(path.c_str());
}

// ------------------------------------------------- out-of-core execution --

// The acceptance matrix: out-of-core paths bit-identical to the in-memory
// engine for every cache budget (thrashing single block through
// all-resident), thread count, and wavefront width.
TEST(OutOfCore, MatchesInMemoryAcrossCacheThreadsAndWavefront) {
  Graph g = TestGraph();
  const std::string path = BlockFilePath("parity");
  size_t blocks = PartitionToBlockFile(g, path, 2048);
  ASSERT_GE(blocks, 4u) << "cache=1 must be well under 1/4 of the blocks";
  BlockStore store = BlockStore::Open(path);
  std::vector<NodeId> starts = AllStarts(g);
  DeepWalk walk(12);

  FlexiWalkerOptions base;
  base.edge_cost_ratio = 4.0;  // profiling needs the full graph: pin it
  WalkResult reference = FlexiWalkerEngine(base).Run(g, walk, starts, uint64_t{4242});

  for (uint32_t cache_blocks : {1u, 2u, static_cast<uint32_t>(blocks)}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      for (uint32_t wavefront : {1u, 8u}) {
        FlexiWalkerOptions options = base;
        options.host_threads = threads;
        options.wavefront = wavefront;
        OutOfCoreStats stats;
        WalkResult ooc = RunFlexiWalkerOutOfCore(store, walk, options, cache_blocks, starts,
                                                 uint64_t{4242}, &stats);
        ASSERT_EQ(ooc.paths, reference.paths)
            << "cache=" << cache_blocks << " threads=" << threads
            << " wavefront=" << wavefront;
        EXPECT_GE(stats.block_loads, 1u);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(OutOfCore, PprTeleportsAcrossBlockBoundaries) {
  // PPR restarts teleport the walker to its start node mid-walk — a park
  // decision that must be taken on the post-update position. Parity across
  // a thrashing cache proves the RNG order survives every re-park.
  Graph g = TestGraph(400, 5.0, 29);
  const std::string path = BlockFilePath("ppr");
  size_t blocks = PartitionToBlockFile(g, path, 2048);
  ASSERT_GE(blocks, 4u);
  BlockStore store = BlockStore::Open(path);
  std::vector<NodeId> starts = AllStarts(g);
  PersonalizedPageRankWalk walk(0.25, 16);

  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  WalkResult reference = FlexiWalkerEngine(options).Run(g, walk, starts, 777);
  OutOfCoreStats stats;
  WalkResult ooc = RunFlexiWalkerOutOfCore(store, walk, options, 1, starts, 777, &stats);
  EXPECT_EQ(ooc.paths, reference.paths);
  // cache=1 with several blocks must thrash: more loads than blocks.
  EXPECT_GT(stats.block_loads, static_cast<uint64_t>(blocks));
  EXPECT_GT(stats.block_evictions, 0u);
  EXPECT_GT(stats.parks, 0u);
  std::remove(path.c_str());
}

TEST(OutOfCore, SecondOrderWorkloadIsRejected) {
  Graph g = TestGraph(200, 4.0, 31);
  const std::string path = BlockFilePath("reject");
  PartitionToBlockFile(g, path, 2048);
  BlockStore store = BlockStore::Open(path);
  std::vector<NodeId> starts = AllStarts(g);
  Node2VecWalk walk(2.0, 0.5, 8);  // prev-node terms: not first-order
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  EXPECT_THROW(RunFlexiWalkerOutOfCore(store, walk, options, 2, starts, 1),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(OutOfCore, ResidentOnlyOptionsAreRejected) {
  Graph g = TestGraph(200, 4.0, 37);
  const std::string path = BlockFilePath("options");
  PartitionToBlockFile(g, path, 2048);
  BlockStore store = BlockStore::Open(path);
  std::vector<NodeId> starts = AllStarts(g);
  DeepWalk walk(8);

  FlexiWalkerOptions unpinned;  // profiling would need the whole graph
  EXPECT_THROW(RunFlexiWalkerOutOfCore(store, walk, unpinned, 2, starts, 1),
               std::invalid_argument);

  FlexiWalkerOptions int8;
  int8.edge_cost_ratio = 4.0;
  int8.use_int8_weights = true;  // O(edges) resident store
  EXPECT_THROW(RunFlexiWalkerOutOfCore(store, walk, int8, 2, starts, 1),
               std::invalid_argument);

  FlexiWalkerOptions cached;
  cached.edge_cost_ratio = 4.0;
  cached.cache_static_tables = true;  // O(edges) resident alias tables
  EXPECT_THROW(RunFlexiWalkerOutOfCore(store, walk, cached, 2, starts, 1),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(OutOfCore, DispenseModesLeavePathsIdentical) {
  // Both execution tiers share the QueryQueue dispensation subsystem; the
  // out-of-core driver dispenses parked-walk buffers through it, and no
  // mode/chunk combination may move a path.
  Graph g = TestGraph(300, 5.0, 41);
  const std::string path = BlockFilePath("dispense");
  PartitionToBlockFile(g, path, 2048);
  BlockStore store = BlockStore::Open(path);
  std::vector<NodeId> starts = AllStarts(g);
  DeepWalk walk(10);
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;
  options.host_threads = 4;

  WalkResult reference = RunFlexiWalkerOutOfCore(store, walk, options, 2, starts, 5);
  for (DispenseMode mode : {DispenseMode::kPerQuery, DispenseMode::kChunked,
                            DispenseMode::kChunkedSteal}) {
    for (uint32_t chunk : {0u, 3u}) {
      FlexiWalkerOptions variant = options;
      variant.dispense = {mode, chunk};
      WalkResult ooc = RunFlexiWalkerOutOfCore(store, walk, variant, 2, starts, 5);
      EXPECT_EQ(ooc.paths, reference.paths)
          << "mode=" << static_cast<int>(mode) << " chunk=" << chunk;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flexi
