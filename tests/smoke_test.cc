// End-to-end smoke: FlexiWalker walks a small weighted graph and produces
// complete paths.
#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

TEST(Smoke, FlexiWalkerRunsNode2Vec) {
  Graph graph = GenerateErdosRenyi(256, 8.0, /*seed=*/7);
  AssignWeights(graph, WeightDistribution::kUniform, 2.0, /*seed=*/11);
  Node2VecWalk walk(2.0, 0.5, /*length=*/10);
  FlexiWalkerEngine engine;
  auto starts = AllNodesAsStarts(graph);
  WalkResult result = engine.Run(graph, walk, starts, /*seed=*/42);
  ASSERT_EQ(result.num_queries, graph.num_nodes());
  // Every path starts at its start node and every recorded edge exists.
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    auto path = result.Path(qid);
    EXPECT_EQ(path[0], starts[qid]);
    for (size_t s = 0; s + 1 < path.size() && path[s + 1] != kInvalidNode; ++s) {
      EXPECT_TRUE(graph.HasEdge(path[s], path[s + 1]))
          << "query " << qid << " step " << s;
    }
  }
  EXPECT_GT(result.cost.coalesced_transactions + result.cost.random_transactions, 0u);
  EXPECT_GT(result.sim_ms, 0.0);
}

}  // namespace
}  // namespace flexi
