#!/usr/bin/env python3
"""Diff two bench JSON runs and flag perf regressions.

Usage: perf_trajectory.py <previous.json> <current.json> [--threshold 0.10]

Compares the dispensation sweep configs (matched on threads + mode: QPS down
or p50/p99 up is a regression), the wavefront sweep configs (matched on
threads + wavefront: steps/sec down is a regression), the out-of-core
cache sweep (matched on cache_blocks: QPS/steps-per-sec down or
peak-RSS up is a regression), the event-loop serving sweep (matched on
connections: QPS down or p50/p99 up is a regression), and the deadline
overload sweep (matched on deadline_us: goodput down is a regression)
between the previous CI run's artifact and the current run. Sections absent from a document are
skipped, so the same script diffs BENCH_scheduler.json, BENCH_outofcore.json,
and BENCH_net.json alike. Regressions beyond the threshold are
emitted as GitHub Actions ::warning:: annotations — the job is annotated,
never failed, because wall-clock numbers on shared CI runners are noisy and
a trajectory is advisory. Always exits 0 unless the inputs are unreadable.

Both files should carry the meta stamp (git SHA, date, hardware concurrency
— bench/bench_util.h) so a flagged swing is attributable; files from before
the stamp existed still diff fine.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def meta_line(doc, label):
    meta = doc.get("meta", {})
    return "%s: sha=%s date=%s hw=%s" % (
        label,
        meta.get("git_sha", "?"),
        meta.get("date_utc", "?"),
        meta.get("hardware_concurrency", doc.get("hardware_concurrency", "?")),
    )


def index_by(rows, keys):
    return {tuple(row.get(k) for k in keys): row for row in rows}


def diff_metric(prev_row, cur_row, metric, higher_is_better):
    """Returns (delta_fraction, regressed). delta > 0 means 'got worse'."""
    prev = prev_row.get(metric)
    cur = cur_row.get(metric)
    if not prev or cur is None:
        return None, False
    if higher_is_better:
        delta = (prev - cur) / prev
    else:
        delta = (cur - prev) / prev
    return delta, delta > 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10)
    args = parser.parse_args()

    try:
        prev_doc = load(args.previous)
        cur_doc = load(args.current)
    except (OSError, ValueError) as err:
        print("cannot read bench JSON: %s" % err, file=sys.stderr)
        return 1

    print(meta_line(prev_doc, "previous"))
    print(meta_line(cur_doc, "current "))

    # Different machine shapes make wall-clock diffs meaningless; still
    # print the table, but say so.
    prev_hw = prev_doc.get("meta", {}).get(
        "hardware_concurrency", prev_doc.get("hardware_concurrency"))
    cur_hw = cur_doc.get("meta", {}).get(
        "hardware_concurrency", cur_doc.get("hardware_concurrency"))
    comparable = prev_hw == cur_hw
    if not comparable:
        print("note: hardware concurrency differs (%s -> %s); diffs are "
              "informational only, no warnings emitted" % (prev_hw, cur_hw))

    warnings = []

    def check(label, metric, delta, regressed):
        if delta is None:
            return
        # delta > 0 always means "got worse", whichever way the metric points.
        tag = "(worse)" if regressed else ("(better)" if delta < 0 else "")
        print("  %-28s %-13s %+7.1f%% %s" % (label, metric, delta * 100, tag))
        if comparable and regressed and delta > args.threshold:
            warnings.append("%s %s regressed %.1f%% vs previous run (threshold %d%%)"
                            % (label, metric, delta * 100, args.threshold * 100))

    sweeps = [
        ("configs", ("threads", "mode"),
         [("qps", True), ("p50_ms", False), ("p99_ms", False)]),
        ("wavefront_configs", ("threads", "wavefront"),
         [("steps_per_sec", True)]),
        # Out-of-core cache sweep (bench_ext_outofcore): a peak-RSS increase
        # at the same cache budget means the fixed overhead grew — exactly
        # the regression the memory-bounded tier exists to prevent.
        ("cache_configs", ("cache_blocks",),
         [("qps", True), ("steps_per_sec", True), ("peak_rss_bytes", False)]),
        # Event-loop serving connection sweep (bench_net_serving): throughput
        # down or tail latency up at the same connection count is a serving
        # regression.
        ("net_configs", ("connections",),
         [("qps", True), ("p50_us", False), ("p99_us", False)]),
        # Deadline-shedding overload sweep (bench_net_serving): goodput —
        # on-time completions per second at 2x capacity — down at the same
        # deadline budget means the shedding stages stopped earning their
        # keep.
        ("deadline_configs", ("deadline_us",),
         [("goodput_qps", True)]),
        # Compiled-kernel sweep (bench_fig12_kernel_ablation): steps/sec down
        # at the same workload + mode means either the interpreted baseline
        # or the JIT-specialized kernel got slower.
        ("jit_configs", ("workload", "mode"),
         [("steps_per_sec", True)]),
    ]
    for section, keys, metrics in sweeps:
        prev_rows = index_by(prev_doc.get(section, []), keys)
        cur_rows = index_by(cur_doc.get(section, []), keys)
        if not prev_rows or not cur_rows:
            print("section %s missing on one side; skipped" % section)
            continue
        print("%s (matched on %s):" % (section, "+".join(keys)))
        for key, cur_row in sorted(cur_rows.items(), key=str):
            prev_row = prev_rows.get(key)
            if prev_row is None:
                continue
            label = " ".join("%s=%s" % (k, v) for k, v in zip(keys, key))
            for metric, higher_is_better in metrics:
                delta, regressed = diff_metric(prev_row, cur_row, metric, higher_is_better)
                check(label, metric, delta, regressed)

    for warning in warnings:
        # GitHub Actions annotation: shows on the job summary and the PR
        # checks tab without failing the build.
        print("::warning title=perf trajectory::%s" % warning)
    if not warnings:
        print("no regressions beyond %.0f%%" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
