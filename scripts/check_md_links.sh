#!/usr/bin/env bash
# Fails when any tracked markdown file contains a relative link to a path
# that does not exist. External links (http/https/mailto) and pure anchors
# are skipped; a "path#fragment" link is checked for the path only. Run
# from anywhere inside the repo; CI runs it in the docs job.
set -u

cd "$(git rev-parse --show-toplevel 2>/dev/null || echo .)"

broken=0
while IFS= read -r file; do
  dir=$(dirname "$file")
  # Inline markdown links: capture the (target) of every [text](target).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*|'') continue ;;
    esac
    path=${target%%#*}     # strip any #fragment
    path=${path%% *}       # strip any '... "title"' suffix
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN: $file -> $target"
      broken=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))/\1/')
done < <(git ls-files --cached --others --exclude-standard '*.md')

if [ "$broken" -ne 0 ]; then
  echo "markdown link check failed"
  exit 1
fi
echo "markdown link check passed"
