// §7.2 extension: dynamic graphs. Edge property weights change between walk
// batches; compares three strategies for keeping eRJS's bound valid:
//   * full re-preprocess after every update batch (sound, expensive),
//   * incremental h_MAX / h_SUM maintenance (WeightUpdater; sound because
//     the maintained max only ever dominates),
//   * eRVS-only fallback (what §7.1 prescribes absent this module).
//
// Expected shape: incremental maintenance costs a small fraction of full
// re-preprocessing while retaining the adaptive engine's walk speed; the
// eRVS-only fallback pays no maintenance but loses eRJS's wins.
#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/runtime/preprocess.h"
#include "src/runtime/weight_updates.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Dynamic graph weight updates", "Section 7.2 extension (dynamic graphs)");

  const DatasetSpec& spec = DatasetByName("EU");
  constexpr int kBatches = 8;

  Table table({"updates/batch", "walk sim_ms", "incr. maint. ms", "full preproc ms",
               "eRVS-only walk ms"});
  for (size_t updates_per_batch : {1000ul, 10000ul, 100000ul}) {
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 1024);

    // Shared preprocessed state maintained incrementally across batches.
    DeviceContext maint_device(DeviceProfile::SimulatedGpu());
    PreprocessPlan plan;
    plan.need_h_max = true;
    plan.need_h_sum = true;
    PreprocessedData pre = RunPreprocess(graph, plan, maint_device);
    maint_device.Reset();
    WeightUpdater updater(graph, &pre, maint_device);

    double walk_ms = 0.0;
    double rvs_only_ms = 0.0;
    double full_preproc_cost = 0.0;
    for (int batch = 0; batch < kBatches; ++batch) {
      FlexiWalkerOptions adaptive;
      adaptive.edge_cost_ratio = 4.0;
      walk_ms += FlexiWalkerEngine(adaptive).Run(graph, walk, starts, kBenchSeed + batch)
                     .sim_ms;
      FlexiWalkerOptions rvs_only = adaptive;
      rvs_only.strategy = SelectionStrategy::kAlwaysRvs;
      rvs_only_ms += FlexiWalkerEngine(rvs_only)
                         .Run(graph, walk, starts, kBenchSeed + batch)
                         .sim_ms;

      auto updates = RandomWeightUpdates(graph, updates_per_batch, 9000 + batch);
      updater.Apply(updates);

      // Cost of the alternative: rebuild the reductions from scratch.
      DeviceContext full_device(DeviceProfile::SimulatedGpu());
      RunPreprocess(graph, plan, full_device);
      full_preproc_cost += full_device.SimulatedMs();
    }
    table.AddRow({std::to_string(updates_per_batch), Table::Num(walk_ms),
                  Table::Num(maint_device.SimulatedMs()), Table::Num(full_preproc_cost),
                  Table::Num(rvs_only_ms)});
  }
  table.Print();
  return 0;
}
