// Table 3: FlexiWalker's profiling and preprocessing overhead per dataset
// (weighted Node2Vec), and its share of the main walk time.
//
// Paper shape: both phases are tiny — 0.46%-3.98% of the walk time — and
// their outputs are reusable per workload/graph.
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Profiling and preprocessing overhead", "Table 3");

  Table table({"dataset", "profile sim_ms", "preproc sim_ms", "total", "walk sim_ms",
               "overhead %"});
  for (const DatasetSpec& spec : AllDatasets()) {
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 2048);
    FlexiWalkerEngine engine;  // profiles at startup (no fixed ratio)
    WalkResult result = engine.Run(graph, walk, starts, kBenchSeed);
    double total = result.profile_sim_ms + result.preprocess_sim_ms;
    table.AddRow({spec.name, Table::Num(result.profile_sim_ms),
                  Table::Num(result.preprocess_sim_ms), Table::Num(total),
                  Table::Num(result.sim_ms), Table::Num(100.0 * total / result.sim_ms)});
  }
  table.Print();
  return 0;
}
