// Fig. 15: multi-GPU scalability of FlexiWalker on FS, EU, AB, TW, SK with
// hash-based query-to-device mapping, speedup vs a single device.
//
// Paper shape: near-linear scaling (geomean 3.23x at 4 GPUs), with AB
// trailing (2.35x) due to residual load imbalance. The bench also prints
// the range-mapping alternative the paper rejected.
#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/walker/multi_device.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Multi-GPU scalability", "Fig. 15");

  Table table({"dataset", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs", "4-GPU (range map)"});
  std::vector<double> speedups4;
  for (const char* name : {"FS", "EU", "AB", "TW", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 4096);

    auto make_engine = [] {
      FlexiWalkerOptions options;
      options.edge_cost_ratio = 4.0;  // profile once, reuse (Table 3 note)
      return std::unique_ptr<Engine>(new FlexiWalkerEngine(options));
    };

    double single = RunMultiDevice(make_engine, graph, walk, starts, 1, QueryMapping::kHash,
                                   kBenchSeed)
                        .makespan_sim_ms;
    std::vector<std::string> row = {name, Table::Num(1.0)};
    for (uint32_t devices : {2u, 3u, 4u}) {
      auto result = RunMultiDevice(make_engine, graph, walk, starts, devices,
                                   QueryMapping::kHash, kBenchSeed);
      double speedup = result.SpeedupOver(single);
      row.push_back(Table::Num(speedup) + "x");
      if (devices == 4) {
        speedups4.push_back(speedup);
      }
    }
    auto range = RunMultiDevice(make_engine, graph, walk, starts, 4, QueryMapping::kRange,
                                kBenchSeed);
    row.push_back(Table::Num(range.SpeedupOver(single)) + "x");
    table.AddRow(row);
  }
  table.Print();
  std::printf("\ngeomean 4-GPU speedup (hash mapping): %.2fx (paper: 3.23x)\n",
              GeometricMean(speedups4));
  return 0;
}
