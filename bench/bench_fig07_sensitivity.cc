// Fig. 7: (a) skewness sensitivity of eRVS vs eRJS on weighted Node2Vec
// over the EU dataset with Pareto(alpha) property weights; (b) histogram of
// per-node coefficient of variation of runtime transition-weight sums under
// 2nd-order PageRank.
//
// Paper shape: eRVS is flat across alpha; eRJS degrades sharply as skew
// rises (low alpha). The CV histogram has substantial mass at high CV,
// motivating per-step kernel selection.
#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/sampling/reservoir.h"
#include "src/walks/node2vec.h"
#include "src/walks/second_order_pr.h"

namespace flexi {
namespace {

void SkewSensitivity() {
  std::printf("-- (a) Skewness sensitivity (weighted Node2Vec, EU) --\n");
  Table table({"alpha", "eRVS sim_ms", "eRJS sim_ms"});
  const DatasetSpec& spec = DatasetByName("EU");
  for (double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    Graph graph = LoadDataset(spec, WeightDistribution::kPareto, alpha);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 2048);

    FlexiWalkerOptions rvs_opts;
    rvs_opts.strategy = SelectionStrategy::kAlwaysRvs;
    rvs_opts.edge_cost_ratio = 4.0;
    FlexiWalkerOptions rjs_opts = rvs_opts;
    rjs_opts.strategy = SelectionStrategy::kAlwaysRjs;

    double rvs_ms = FlexiWalkerEngine(rvs_opts).Run(graph, walk, starts, kBenchSeed).sim_ms;
    double rjs_ms = FlexiWalkerEngine(rjs_opts).Run(graph, walk, starts, kBenchSeed).sim_ms;
    table.AddRow({Table::Num(alpha), Table::Num(rvs_ms), Table::Num(rjs_ms)});
  }
  table.Print();
  std::printf("\n");
}

void RuntimeWeightVariation() {
  std::printf("-- (b) Runtime weight variation (2nd PR, EU): CV histogram --\n");
  const DatasetSpec& spec = DatasetByName("EU");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
  SecondOrderPageRankWalk walk(0.2, 80);
  DeviceContext device(DeviceProfile::SimulatedGpu());
  WalkContext ctx{&graph, &device, nullptr, nullptr};

  // Walk with eRVS, accumulating per-node statistics of the transition
  // weight sum observed each time the walker samples at that node.
  std::vector<RunningStats> per_node(graph.num_nodes());
  auto starts = BenchStarts(graph, 2048);
  for (size_t qid = 0; qid < starts.size(); ++qid) {
    QueryState q;
    q.query_id = qid;
    q.cur = starts[qid];
    PhiloxStream stream(kBenchSeed, qid);
    KernelRng rng(stream, device.mem());
    for (uint32_t s = 0; s < walk.walk_length(); ++s) {
      double sum = 0.0;
      for (uint32_t i = 0; i < graph.Degree(q.cur); ++i) {
        sum += walk.TransitionWeight(ctx, q, i);
      }
      per_node[q.cur].Add(sum);
      StepResult step = ERvsJumpStep(ctx, walk, q, rng);
      if (!step.ok()) {
        break;
      }
      walk.Update(ctx, q, graph.Neighbor(q.cur, step.index), step.index);
    }
  }

  Histogram histogram(0.0, 100.0, 10);
  for (const RunningStats& stats : per_node) {
    if (stats.count() >= 2) {
      histogram.Add(stats.CoefficientOfVariationPct());
    }
  }
  Table table({"CV bin upper (%)", "#nodes"});
  for (size_t b = 0; b < histogram.bins(); ++b) {
    table.AddRow({Table::Num(histogram.BinUpperEdge(b)),
                  std::to_string(histogram.BinCount(b))});
  }
  table.Print();
  std::printf("nodes with >= 2 sampled visits: %llu\n\n",
              static_cast<unsigned long long>(histogram.total()));
}

}  // namespace
}  // namespace flexi

int main() {
  flexi::PrintHeader("Kernel sensitivity and runtime weight variation", "Fig. 7 (a)+(b)");
  flexi::SkewSensitivity();
  flexi::RuntimeWeightVariation();
  return 0;
}
