// Fig. 11: ablation of the runtime selection component. FlowWalker as
// reference, then FlexiWalker restricted to eRVS-only, eRJS-only, and the
// full runtime cost-model selection, on uniform and Pareto weights over
// YT, EU, SK.
//
// Paper shape: eRVS-only is stable; eRJS-only degrades sharply at low
// alpha; the runtime selector tracks the better of the two per node (up to
// 3.37x over eRJS-only and 421x over eRVS-only in the paper's extremes) and
// avoids eRJS-only's blowups.
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Runtime component ablation", "Fig. 11");

  for (const char* name : {"YT", "EU", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    std::printf("-- %s --\n", name);
    Table table({"weights", "FlowWalker", "FXW eRVS-only", "FXW eRJS-only", "FlexiWalker"});

    auto run_row = [&](const std::string& label, WeightDistribution dist, double alpha) {
      Graph graph = LoadDataset(spec, dist, alpha);
      Node2VecWalk walk(2.0, 0.5, 80);
      auto starts = BenchStarts(graph, 2048);

      double fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
      FlexiWalkerOptions rvs_only;
      rvs_only.strategy = SelectionStrategy::kAlwaysRvs;
      FlexiWalkerOptions rjs_only;
      rjs_only.strategy = SelectionStrategy::kAlwaysRjs;
      double rvs = FlexiWalkerEngine(rvs_only).Run(graph, walk, starts, kBenchSeed).sim_ms;
      double rjs = FlexiWalkerEngine(rjs_only).Run(graph, walk, starts, kBenchSeed).sim_ms;
      double fxw = FlexiWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
      table.AddRow({label, Cell(fw), Cell(rvs), Cell(rjs), Cell(fxw)});
    };

    run_row("uniform", WeightDistribution::kUniform, 0.0);
    for (double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
      run_row("alpha=" + Table::Num(alpha), WeightDistribution::kPareto, alpha);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
