// WalkScheduler strong scaling + query-dispensation contention sweep.
//
// Phase 1: the same query batch at 1, 2, 4, ... worker threads up to the
// host's hardware concurrency. Because walks are seed-stable (scheduler.h),
// sim_ms and the paths themselves are identical in every row — only
// wall-clock moves, which is exactly the point: the simulation's numbers are
// machine-independent while the system itself runs as fast as the host
// allows.
//
// Phase 2: repeated small batches, persistent WorkerPool vs spawn-per-Run —
// the serving workload's thread-dispatch cost.
//
// Phase 3: dispensation contention. First a pure QueryQueue drain (no
// walking) showing what the global ticket counter costs by itself, then the
// repeated-small-batch walk workload across {per-query, chunked,
// chunked+steal} × thread counts, with QPS and p50/p99 batch latency per
// config. The per-config numbers land in BENCH_scheduler.json (override
// with --json <path>) so CI keeps a perf trajectory across PRs. Dispatch
// counts are reported via QueryQueue::dispensed() — the clamped view —
// so they never exceed the query total even though racing drainers
// overshoot the raw ticket counter.
//
// Phase 4: wavefront stepping. The batched inner loop (scheduler.cc) at
// widths {1, 4, 16} across thread counts, reported as steps/sec with W=1
// (walk-at-a-time) as the baseline; per-config numbers join the JSON as
// wavefront_configs, and the whole document is stamped with git SHA, date,
// and hardware concurrency (bench_util.h) so trajectory diffs are
// attributable.
//
// --quick shrinks every phase for CI smoke. Exit code is non-zero if paths
// diverge anywhere (dispatch modes, dispensation modes, wavefront widths,
// or thread counts must never change a walk).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/graph/generators.h"
#include "src/sampling/alias.h"
#include "src/sampling/inverse_transform.h"
#include "src/obs/metrics.h"
#include "src/walker/scheduler.h"
#include "src/walks/deepwalk.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

const char* ModeName(DispenseMode mode) {
  switch (mode) {
    case DispenseMode::kPerQuery:
      return "per-query";
    case DispenseMode::kChunked:
      return "chunked";
    case DispenseMode::kChunkedSteal:
      return "chunked+steal";
  }
  return "?";
}

// Thread counts swept: powers of two up to hardware concurrency, always
// including at least 1 and 2 so single-core hosts still exercise the
// contended paths (timeslicing keeps the atomics contended even there).
std::vector<unsigned> SweepThreads() {
  unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> threads;
  for (unsigned t = 1; t <= cores; t *= 2) {
    threads.push_back(t);
  }
  if (threads.back() != cores) {
    threads.push_back(cores);
  }
  if (threads.size() < 2) {
    threads.push_back(2);
  }
  return threads;
}

struct SweepRow {
  unsigned threads = 0;
  DispenseMode mode = DispenseMode::kPerQuery;
  double total_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup = 1.0;  // vs per-query at the same thread count
};

}  // namespace
}  // namespace flexi

int main(int argc, char** argv) {
  using namespace flexi;
  bool quick = false;
  std::string json_path = "BENCH_scheduler.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 1;
    }
  }
  bool paths_ok = true;

  PrintHeader("WalkScheduler strong scaling", "§5.3 dynamic query scheduling");

  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
  Node2VecWalk walk(2.0, 0.5, quick ? 20u : 80u);
  auto starts = BenchStarts(graph, quick ? 2048 : 8192);

  unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  FlexiWalkerOptions warm_opts;
  warm_opts.edge_cost_ratio = 4.0;
  warm_opts.host_threads = 1;
  // Warm-up: touch the graph and grow the allocator before timing anything.
  FlexiWalkerEngine(warm_opts).Run(graph, walk, starts, kBenchSeed);

  Table table({"threads", "wall_ms", "sim_ms", "speedup", "paths identical"});
  double single_wall = 0.0;
  std::vector<NodeId> reference_paths;
  for (unsigned threads = 1; threads <= cores; threads *= 2) {
    FlexiWalkerOptions options;
    options.edge_cost_ratio = 4.0;
    options.host_threads = threads;
    WalkResult result = FlexiWalkerEngine(options).Run(graph, walk, starts, kBenchSeed);
    if (threads == 1) {
      single_wall = result.wall_ms;
      reference_paths = result.paths;
    }
    bool identical = result.paths == reference_paths;
    paths_ok = paths_ok && identical;
    table.AddRow({std::to_string(threads), Table::Num(result.wall_ms),
                  Table::Num(result.sim_ms), Table::Num(single_wall / result.wall_ms) + "x",
                  identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nwall-clock drops with threads while sim_ms and the walk paths stay fixed\n"
      "(seed-stable parallelism; see scheduler.h and scheduler_test.cc).\n");

  // --- Repeated small batches: persistent pool vs spawn-per-Run. ---
  // The serving workload (WalkService, docs/SERVING.md): many small batches
  // back to back. Spawn-per-Run pays thread creation + join per batch; the
  // persistent pool parks its workers on a condition variable between
  // batches. Paths are bit-identical in both modes — only wall-clock moves.
  PrintHeader("Repeated small batches", "persistent WorkerPool vs spawn-per-Run");
  const int kBatches = quick ? 100 : 400;
  constexpr size_t kBatchQueries = 64;
  Node2VecWalk small_walk(2.0, 0.5, 8);
  auto batch_starts = BenchStarts(graph, kBatchQueries);
  StepKernel its_step = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                           KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };

  // At least two workers, even on a single-core host: the comparison is
  // thread dispatch cost (spawn+join vs park+wake), which inline execution
  // at workers == 1 would bypass entirely.
  unsigned batch_workers = std::max(2u, cores);
  auto run_batches = [&](WorkerDispatch dispatch) {
    SchedulerOptions options;
    options.num_threads = batch_workers;
    options.dispatch = dispatch;
    WalkScheduler scheduler(options);
    // Warm-up batch so first-touch effects (and the pool's one-time spawn)
    // don't land inside the timed loop of either mode.
    scheduler.Run(graph, small_walk, batch_starts, kBenchSeed, its_step);
    double wall_ms = 0.0;
    std::vector<NodeId> paths;
    for (int b = 0; b < kBatches; ++b) {
      WalkResult result = scheduler.Run(graph, small_walk, batch_starts, kBenchSeed, its_step);
      wall_ms += result.wall_ms;
      if (b == 0) {
        paths = std::move(result.paths);
      }
    }
    return std::pair<double, std::vector<NodeId>>(wall_ms, std::move(paths));
  };

  auto [pool_ms, pool_paths] = run_batches(WorkerDispatch::kPersistentPool);
  auto [spawn_ms, spawn_paths] = run_batches(WorkerDispatch::kSpawnPerRun);

  Table batch_table({"dispatch", "batches", "total wall_ms", "ms/batch", "speedup"});
  batch_table.AddRow({"spawn-per-run", std::to_string(kBatches), Table::Num(spawn_ms),
                      Table::Num(spawn_ms / kBatches), "1.00x"});
  batch_table.AddRow({"persistent pool", std::to_string(kBatches), Table::Num(pool_ms),
                      Table::Num(pool_ms / kBatches), Table::Num(spawn_ms / pool_ms) + "x"});
  batch_table.Print();
  bool identical_modes = pool_paths == spawn_paths;
  paths_ok = paths_ok && identical_modes;
  std::printf("paths identical across dispatch modes: %s\n", identical_modes ? "yes" : "NO");

  // --- Phase 3a: pure dispensation drain — the ticket counter in isolation.
  // T threads hammer one QueryQueue with no walk work at all; per-query mode
  // is one contended global RMW per ticket, the chunked modes touch the
  // global counter once per chunk. Dispatch counts use dispensed(), the
  // clamped view, so the table never reports more tickets than exist.
  PrintHeader("Query dispensation drain", "ticket-counter contention, no walking");
  const size_t kDrainIds = quick ? 1'000'000 : 4'000'000;
  std::vector<NodeId> drain_starts(kDrainIds, 0);
  std::vector<unsigned> sweep_threads = SweepThreads();
  Table drain_table({"threads", "mode", "drain ms", "Mticket/s", "dispensed", "speedup"});
  for (unsigned threads : sweep_threads) {
    double per_query_ms = 0.0;
    for (DispenseMode mode :
         {DispenseMode::kPerQuery, DispenseMode::kChunked, DispenseMode::kChunkedSteal}) {
      QueryQueue queue(drain_starts, threads, {mode, 0});
      auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> drainers;
      for (unsigned w = 0; w < threads; ++w) {
        drainers.emplace_back([&queue, w] {
          while (queue.Next(w).has_value()) {
          }
        });
      }
      for (auto& drainer : drainers) {
        drainer.join();
      }
      double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                      .count();
      if (mode == DispenseMode::kPerQuery) {
        per_query_ms = ms;
      }
      drain_table.AddRow({std::to_string(threads), ModeName(mode), Table::Num(ms),
                          Table::Num(static_cast<double>(kDrainIds) / ms / 1000.0),
                          std::to_string(queue.dispensed()),
                          Table::Num(per_query_ms / ms) + "x"});
    }
  }
  drain_table.Print();

  // --- Phase 3b: the repeated-small-batch walk workload across dispensation
  // modes. Cheap O(1) cached-alias steps (the served DeepWalk fast path) keep
  // per-query work small enough that dispensation cost is visible; QPS and
  // batch-latency percentiles per config feed BENCH_scheduler.json.
  PrintHeader("Dispensation contention sweep", "repeated small batches x dispense mode");
  Graph sweep_graph = GenerateErdosRenyi(4096, 8.0, 7);
  DeepWalk sweep_walk(4);
  const size_t kSweepQueries = quick ? 2048 : 4096;
  const int kSweepBatches = quick ? 30 : 120;
  std::vector<NodeId> sweep_starts(kSweepQueries);
  for (size_t i = 0; i < kSweepQueries; ++i) {
    sweep_starts[i] = static_cast<NodeId>((i * 37) % sweep_graph.num_nodes());
  }
  std::vector<AliasTable> tables = BuildNodeAliasTables(sweep_graph, 0);
  StepKernel cached_step = [&tables](const WalkContext& ctx, const WalkLogic&, const QueryState& q,
                                     KernelRng& rng) { return CachedAliasStep(ctx, tables, q, rng); };

  std::vector<SweepRow> rows;
  std::vector<NodeId> sweep_reference;
  for (unsigned threads : sweep_threads) {
    double per_query_ms = 0.0;
    for (DispenseMode mode :
         {DispenseMode::kPerQuery, DispenseMode::kChunked, DispenseMode::kChunkedSteal}) {
      SchedulerOptions options;
      options.num_threads = threads;
      options.dispense = {mode, 0};
      WalkScheduler scheduler(options);
      scheduler.Run(sweep_graph, sweep_walk, sweep_starts, kBenchSeed, cached_step);  // warm-up
      std::vector<double> batch_ms;
      batch_ms.reserve(kSweepBatches);
      double total_ms = 0.0;
      for (int b = 0; b < kSweepBatches; ++b) {
        WalkResult result =
            scheduler.Run(sweep_graph, sweep_walk, sweep_starts, kBenchSeed, cached_step);
        batch_ms.push_back(result.wall_ms);
        total_ms += result.wall_ms;
        if (b == 0) {
          if (sweep_reference.empty()) {
            sweep_reference = std::move(result.paths);
          } else if (result.paths != sweep_reference) {
            paths_ok = false;
            std::printf("PATH DIVERGENCE: threads=%u mode=%s\n", threads, ModeName(mode));
          }
        }
      }
      SweepRow row;
      row.threads = threads;
      row.mode = mode;
      row.total_ms = total_ms;
      row.qps = static_cast<double>(kSweepQueries) * kSweepBatches / (total_ms / 1000.0);
      std::sort(batch_ms.begin(), batch_ms.end());
      row.p50_ms = obs::PercentileOfSorted(batch_ms, 0.50);
      row.p99_ms = obs::PercentileOfSorted(batch_ms, 0.99);
      if (mode == DispenseMode::kPerQuery) {
        per_query_ms = total_ms;
      }
      row.speedup = per_query_ms / total_ms;
      rows.push_back(row);
    }
  }

  Table sweep_table({"threads", "mode", "total ms", "QPS", "p50 ms", "p99 ms", "speedup"});
  for (const SweepRow& row : rows) {
    sweep_table.AddRow({std::to_string(row.threads), ModeName(row.mode),
                        Table::Num(row.total_ms), Table::Num(row.qps), Table::Num(row.p50_ms),
                        Table::Num(row.p99_ms), Table::Num(row.speedup) + "x"});
  }
  sweep_table.Print();
  std::printf(
      "paths identical across dispensation modes and thread counts: %s\n"
      "(chunked claiming hits the global counter O(total/K) times; stealing\n"
      "rebalances drained cursors — query_queue.h)\n",
      paths_ok ? "yes" : "NO");

  // --- Phase 4: wavefront stepping sweep — the batched inner loop at
  // widths {1, 4, 16} across thread counts on the Phase-1 walk workload.
  // Steps/sec is wall-clock over actually-sampled steps; W=1 (walk-at-a-
  // time, the pre-wavefront loop shape) is the per-thread-count baseline.
  // Paths must stay bit-identical across every (width, threads) cell.
  PrintHeader("Wavefront stepping sweep", "batched multi-walk execution + prefetch staging");
  StepKernel wave_step = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                            KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };
  struct WaveRow {
    unsigned threads = 0;
    uint32_t wavefront = 0;
    double wall_ms = 0.0;
    double steps_per_sec = 0.0;
    double speedup = 1.0;  // vs wavefront=1 at the same thread count
  };
  std::vector<WaveRow> wave_rows;
  std::vector<NodeId> wave_reference;
  Table wave_table({"threads", "wavefront", "wall_ms", "Msteps/s", "vs W=1", "paths identical"});
  for (unsigned threads : sweep_threads) {
    double w1_ms = 0.0;
    for (uint32_t wavefront : {1u, 4u, 16u}) {
      SchedulerOptions options;
      options.num_threads = threads;
      options.wavefront = wavefront;
      WalkScheduler scheduler(options);
      scheduler.Run(graph, walk, starts, kBenchSeed, wave_step);  // warm-up
      WalkResult result = scheduler.Run(graph, walk, starts, kBenchSeed, wave_step);
      uint64_t steps = CountSampledSteps(result);
      bool identical = true;
      if (wave_reference.empty()) {
        wave_reference = std::move(result.paths);
      } else {
        identical = result.paths == wave_reference;
        paths_ok = paths_ok && identical;
      }
      if (wavefront == 1) {
        w1_ms = result.wall_ms;
      }
      WaveRow row;
      row.threads = threads;
      row.wavefront = wavefront;
      row.wall_ms = result.wall_ms;
      row.steps_per_sec = static_cast<double>(steps) / (result.wall_ms / 1000.0);
      row.speedup = w1_ms / result.wall_ms;
      wave_rows.push_back(row);
      wave_table.AddRow({std::to_string(threads), std::to_string(wavefront),
                         Table::Num(row.wall_ms), Table::Num(row.steps_per_sec / 1e6),
                         Table::Num(row.speedup) + "x", identical ? "yes" : "NO"});
    }
  }
  wave_table.Print();
  std::printf(
      "paths identical across wavefront widths and thread counts: %s\n"
      "(W in-flight walks per worker advance one step per pass; prefetch\n"
      "staging hides CSR row misses behind the other slots' sampling —\n"
      "scheduler.cc. Expect parity at 1 thread on 1 core; the win needs\n"
      "real memory-level parallelism.)\n",
      paths_ok ? "yes" : "NO");

  // --- Instrumentation overhead gate: the metrics layer must be free. ---
  // The scheduler's telemetry is worker-local counters folded into the
  // registry once per batch (scheduler.cc LocalCounters), so enabling it
  // should not move steps/sec beyond run-to-run noise. Best-of-N on each
  // side to damp scheduler jitter; the 2x floor is deliberately generous —
  // the gate exists to catch a per-step atomic sneaking onto the hot path
  // (that costs an order of magnitude, not percents), not to flake CI.
  PrintHeader("Instrumentation overhead", "metrics enabled vs disabled, src/obs/");
  const int kOverheadReps = quick ? 3 : 5;
  auto best_steps_per_sec = [&](bool metrics_on) {
    obs::SetMetricsEnabled(metrics_on);
    double best = 0.0;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      SchedulerOptions options;
      options.num_threads = cores;
      WalkScheduler scheduler(options);
      WalkResult result = scheduler.Run(graph, walk, starts, kBenchSeed, wave_step);
      uint64_t steps = CountSampledSteps(result);
      best = std::max(best, static_cast<double>(steps) / (result.wall_ms / 1000.0));
    }
    return best;
  };
  best_steps_per_sec(true);  // warm-up: allocator + registry series creation
  double off_steps = best_steps_per_sec(false);
  double on_steps = best_steps_per_sec(true);
  obs::SetMetricsEnabled(true);  // leave the process-wide default restored
  bool overhead_ok = on_steps >= 0.5 * off_steps;
  Table overhead_table({"metrics", "best Msteps/s", "vs disabled"});
  overhead_table.AddRow({"disabled", Table::Num(off_steps / 1e6), "1.00x"});
  overhead_table.AddRow({"enabled", Table::Num(on_steps / 1e6),
                         Table::Num(on_steps / off_steps) + "x"});
  overhead_table.Print();
  std::printf("instrumentation overhead within noise (enabled >= 0.5x disabled): %s\n",
              overhead_ok ? "yes" : "NO");
  if (!overhead_ok) {
    std::fprintf(stderr,
                 "OVERHEAD FAILURE: steps/sec with metrics enabled (%.3g) fell below "
                 "0.5x the disabled rate (%.3g) — something hot-path is counting "
                 "per step\n",
                 on_steps, off_steps);
  }

  // --- BENCH_scheduler.json: the sweeps' per-config numbers for CI trend
  // tracking. Schema: {meta: {bench, quick, git_sha, date_utc,
  // hardware_concurrency}, bench, quick, hardware_concurrency, workload,
  // configs:[{threads, mode, total_ms, qps, p50_ms, p99_ms,
  // speedup_vs_per_query}], wavefront_configs:[{threads, wavefront,
  // wall_ms, steps_per_sec, speedup_vs_w1}]}. The pre-meta top-level
  // fields are kept so older trajectory tooling still parses new files.
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    WriteBenchMetaJson(json, "scheduler_scaling", quick);
    std::fprintf(json,
                 "  \"bench\": \"scheduler_scaling\",\n  \"quick\": %s,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"workload\": {\"queries_per_batch\": %zu, \"walk_length\": 4, "
                 "\"batches\": %d},\n  \"configs\": [\n",
                 quick ? "true" : "false", cores, kSweepQueries, kSweepBatches);
    for (size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      std::fprintf(json,
                   "    {\"threads\": %u, \"mode\": \"%s\", \"total_ms\": %.3f, "
                   "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                   "\"speedup_vs_per_query\": %.3f}%s\n",
                   row.threads, ModeName(row.mode), row.total_ms, row.qps, row.p50_ms,
                   row.p99_ms, row.speedup, i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n  \"wavefront_configs\": [\n");
    for (size_t i = 0; i < wave_rows.size(); ++i) {
      const WaveRow& row = wave_rows[i];
      std::fprintf(json,
                   "    {\"threads\": %u, \"wavefront\": %u, \"wall_ms\": %.3f, "
                   "\"steps_per_sec\": %.1f, \"speedup_vs_w1\": %.3f}%s\n",
                   row.threads, row.wavefront, row.wall_ms, row.steps_per_sec, row.speedup,
                   i + 1 == wave_rows.size() ? "" : ",");
    }
    std::fprintf(json,
                 "  ],\n  \"instrumentation_overhead\": {\"steps_per_sec_disabled\": %.1f, "
                 "\"steps_per_sec_enabled\": %.1f}\n}\n",
                 off_steps, on_steps);
    std::fclose(json);
    std::printf("per-config QPS/p50/p99 + wavefront steps/sec written to %s\n",
                json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }

  // Non-zero on divergence or instrumentation overhead so the CI smoke
  // step actually gates both instead of just printing them.
  return (paths_ok && overhead_ok) ? 0 : 1;
}
