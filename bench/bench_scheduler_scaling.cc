// WalkScheduler strong scaling: the same query batch at 1, 2, 4, ... worker
// threads up to the host's hardware concurrency. Because walks are
// seed-stable (scheduler.h), sim_ms and the paths themselves are identical
// in every row — only wall-clock moves, which is exactly the point: the
// simulation's numbers are machine-independent while the system itself runs
// as fast as the host allows. On a >= 4-core host the top row should show a
// >= 2x wall-clock speedup over single-thread.
#include <thread>

#include "bench/bench_util.h"
#include "src/walker/scheduler.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("WalkScheduler strong scaling", "§5.3 dynamic query scheduling");

  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
  Node2VecWalk walk(2.0, 0.5, 80);
  auto starts = BenchStarts(graph, 8192);

  unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  FlexiWalkerOptions warm_opts;
  warm_opts.edge_cost_ratio = 4.0;
  warm_opts.host_threads = 1;
  // Warm-up: touch the graph and grow the allocator before timing anything.
  FlexiWalkerEngine(warm_opts).Run(graph, walk, starts, kBenchSeed);

  Table table({"threads", "wall_ms", "sim_ms", "speedup", "paths identical"});
  double single_wall = 0.0;
  std::vector<NodeId> reference_paths;
  for (unsigned threads = 1; threads <= cores; threads *= 2) {
    FlexiWalkerOptions options;
    options.edge_cost_ratio = 4.0;
    options.host_threads = threads;
    WalkResult result = FlexiWalkerEngine(options).Run(graph, walk, starts, kBenchSeed);
    if (threads == 1) {
      single_wall = result.wall_ms;
      reference_paths = result.paths;
    }
    bool identical = result.paths == reference_paths;
    table.AddRow({std::to_string(threads), Table::Num(result.wall_ms),
                  Table::Num(result.sim_ms), Table::Num(single_wall / result.wall_ms) + "x",
                  identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nwall-clock drops with threads while sim_ms and the walk paths stay fixed\n"
      "(seed-stable parallelism; see scheduler.h and scheduler_test.cc).\n");
  return 0;
}
