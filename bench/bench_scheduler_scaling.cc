// WalkScheduler strong scaling: the same query batch at 1, 2, 4, ... worker
// threads up to the host's hardware concurrency. Because walks are
// seed-stable (scheduler.h), sim_ms and the paths themselves are identical
// in every row — only wall-clock moves, which is exactly the point: the
// simulation's numbers are machine-independent while the system itself runs
// as fast as the host allows. On a >= 4-core host the top row should show a
// >= 2x wall-clock speedup over single-thread.
#include <thread>
#include <utility>

#include "bench/bench_util.h"
#include "src/sampling/inverse_transform.h"
#include "src/walker/scheduler.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("WalkScheduler strong scaling", "§5.3 dynamic query scheduling");

  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
  Node2VecWalk walk(2.0, 0.5, 80);
  auto starts = BenchStarts(graph, 8192);

  unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  FlexiWalkerOptions warm_opts;
  warm_opts.edge_cost_ratio = 4.0;
  warm_opts.host_threads = 1;
  // Warm-up: touch the graph and grow the allocator before timing anything.
  FlexiWalkerEngine(warm_opts).Run(graph, walk, starts, kBenchSeed);

  Table table({"threads", "wall_ms", "sim_ms", "speedup", "paths identical"});
  double single_wall = 0.0;
  std::vector<NodeId> reference_paths;
  for (unsigned threads = 1; threads <= cores; threads *= 2) {
    FlexiWalkerOptions options;
    options.edge_cost_ratio = 4.0;
    options.host_threads = threads;
    WalkResult result = FlexiWalkerEngine(options).Run(graph, walk, starts, kBenchSeed);
    if (threads == 1) {
      single_wall = result.wall_ms;
      reference_paths = result.paths;
    }
    bool identical = result.paths == reference_paths;
    table.AddRow({std::to_string(threads), Table::Num(result.wall_ms),
                  Table::Num(result.sim_ms), Table::Num(single_wall / result.wall_ms) + "x",
                  identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nwall-clock drops with threads while sim_ms and the walk paths stay fixed\n"
      "(seed-stable parallelism; see scheduler.h and scheduler_test.cc).\n");

  // --- Repeated small batches: persistent pool vs spawn-per-Run. ---
  // The serving workload (WalkService, docs/SERVING.md): many small batches
  // back to back. Spawn-per-Run pays thread creation + join per batch; the
  // persistent pool parks its workers on a condition variable between
  // batches. Paths are bit-identical in both modes — only wall-clock moves.
  PrintHeader("Repeated small batches", "persistent WorkerPool vs spawn-per-Run");
  constexpr int kBatches = 400;
  constexpr size_t kBatchQueries = 64;
  Node2VecWalk small_walk(2.0, 0.5, 8);
  auto batch_starts = BenchStarts(graph, kBatchQueries);
  StepFn its_step = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                       KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };

  // At least two workers, even on a single-core host: the comparison is
  // thread dispatch cost (spawn+join vs park+wake), which inline execution
  // at workers == 1 would bypass entirely.
  unsigned batch_workers = std::max(2u, cores);
  auto run_batches = [&](WorkerDispatch dispatch) {
    SchedulerOptions options;
    options.num_threads = batch_workers;
    options.dispatch = dispatch;
    WalkScheduler scheduler(options);
    // Warm-up batch so first-touch effects (and the pool's one-time spawn)
    // don't land inside the timed loop of either mode.
    scheduler.Run(graph, small_walk, batch_starts, kBenchSeed, its_step);
    double wall_ms = 0.0;
    std::vector<NodeId> paths;
    for (int b = 0; b < kBatches; ++b) {
      WalkResult result = scheduler.Run(graph, small_walk, batch_starts, kBenchSeed, its_step);
      wall_ms += result.wall_ms;
      if (b == 0) {
        paths = std::move(result.paths);
      }
    }
    return std::pair<double, std::vector<NodeId>>(wall_ms, std::move(paths));
  };

  auto [pool_ms, pool_paths] = run_batches(WorkerDispatch::kPersistentPool);
  auto [spawn_ms, spawn_paths] = run_batches(WorkerDispatch::kSpawnPerRun);

  Table batch_table({"dispatch", "batches", "total wall_ms", "ms/batch", "speedup"});
  batch_table.AddRow({"spawn-per-run", std::to_string(kBatches), Table::Num(spawn_ms),
                      Table::Num(spawn_ms / kBatches), "1.00x"});
  batch_table.AddRow({"persistent pool", std::to_string(kBatches), Table::Num(pool_ms),
                      Table::Num(pool_ms / kBatches), Table::Num(spawn_ms / pool_ms) + "x"});
  batch_table.Print();
  bool identical_modes = pool_paths == spawn_paths;
  std::printf("paths identical across dispatch modes: %s\n", identical_modes ? "yes" : "NO");
  // Non-zero on divergence so the CI smoke step actually gates dispatch
  // parity instead of just printing it.
  return identical_modes ? 0 : 1;
}
