// Shared helpers for the per-figure/per-table bench binaries.
//
// Every bench prints (a) the paper's rows/series measured on the scaled
// stand-in datasets and (b) the flags (OOM) derived from full-scale
// footprint formulas, so the *shape* of each figure — who wins, by what
// factor, where crossovers fall — can be compared against the paper
// directly. Simulated milliseconds come from the substrate's transaction
// accounting (DESIGN.md §1), which is deterministic and
// machine-independent; wall-clock on the host is reported alongside where
// useful.
#ifndef FLEXIWALKER_BENCH_BENCH_UTIL_H_
#define FLEXIWALKER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/graph/datasets.h"
#include "src/metrics/report.h"
#include "src/walker/engine.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walker/scheduler.h"

namespace flexi {

inline constexpr uint64_t kBenchSeed = 20260427;  // EuroSys'26 first day
inline constexpr uint64_t kDeviceMemoryBytes = 48ull << 30;  // A6000 VRAM

// Upper-bounds the number of walk queries per dataset so bench wall-clock
// stays tractable on one host core; queries remain uniformly spread.
inline std::vector<NodeId> BenchStarts(const Graph& graph, size_t max_queries = 4096) {
  uint32_t stride =
      static_cast<uint32_t>((graph.num_nodes() + max_queries - 1) / max_queries);
  return StridedStarts(graph, std::max<uint32_t>(stride, 1));
}

// Full-scale OOM reproduction: the original dataset's resident footprint
// plus an engine's auxiliary structures vs. device memory.
inline bool WouldOom(const DatasetSpec& spec, uint64_t engine_extra_bytes) {
  return FullScaleFootprintBytes(spec) + engine_extra_bytes > kDeviceMemoryBytes;
}

// NextDoor's transit-parallel sort keeps roughly one 8-byte key per edge of
// sampling frontier at full scale (see baselines.h).
inline uint64_t NextDoorSortBytes(const DatasetSpec& spec) {
  return spec.paper_edges * 8;
}

// Formats a result cell: the simulated time, or an OOM sentinel.
inline std::string Cell(double sim_ms, bool oom = false) {
  if (oom) {
    return "OOM";
  }
  return Table::Num(sim_ms);
}

// Peak-power model for Fig. 16: sustained bandwidth utilization (coalesced
// traffic) drives a device toward its peak; random-access-heavy mixes leave
// lanes stalled and draw less.
inline double MaxWatts(const WalkResult& result, const DeviceProfile& profile) {
  uint64_t total = result.cost.coalesced_transactions + result.cost.random_transactions;
  double coalesced_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(result.cost.coalesced_transactions) /
                       static_cast<double>(total);
  return profile.idle_watts + (profile.peak_watts - profile.idle_watts) * coalesced_fraction;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("host: %u scheduler worker threads (walk paths are thread-count invariant)\n",
              DefaultWorkerThreads());
  std::printf("(sim_ms = substrate-accounted simulated milliseconds; see DESIGN.md)\n\n");
}

}  // namespace flexi

#endif  // FLEXIWALKER_BENCH_BENCH_UTIL_H_
