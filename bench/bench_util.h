// Shared helpers for the per-figure/per-table bench binaries.
//
// Every bench prints (a) the paper's rows/series measured on the scaled
// stand-in datasets and (b) the flags (OOM) derived from full-scale
// footprint formulas, so the *shape* of each figure — who wins, by what
// factor, where crossovers fall — can be compared against the paper
// directly. Simulated milliseconds come from the substrate's transaction
// accounting (DESIGN.md §1), which is deterministic and
// machine-independent; wall-clock on the host is reported alongside where
// useful.
#ifndef FLEXIWALKER_BENCH_BENCH_UTIL_H_
#define FLEXIWALKER_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/graph/datasets.h"
#include "src/metrics/report.h"
#include "src/walker/engine.h"
#include "src/walker/flexiwalker_engine.h"
#include "src/walker/scheduler.h"

namespace flexi {

inline constexpr uint64_t kBenchSeed = 20260427;  // EuroSys'26 first day
inline constexpr uint64_t kDeviceMemoryBytes = 48ull << 30;  // A6000 VRAM

// Upper-bounds the number of walk queries per dataset so bench wall-clock
// stays tractable on one host core; queries remain uniformly spread.
inline std::vector<NodeId> BenchStarts(const Graph& graph, size_t max_queries = 4096) {
  uint32_t stride =
      static_cast<uint32_t>((graph.num_nodes() + max_queries - 1) / max_queries);
  return StridedStarts(graph, std::max<uint32_t>(stride, 1));
}

// Full-scale OOM reproduction: the original dataset's resident footprint
// plus an engine's auxiliary structures vs. device memory.
inline bool WouldOom(const DatasetSpec& spec, uint64_t engine_extra_bytes) {
  return FullScaleFootprintBytes(spec) + engine_extra_bytes > kDeviceMemoryBytes;
}

// NextDoor's transit-parallel sort keeps roughly one 8-byte key per edge of
// sampling frontier at full scale (see baselines.h).
inline uint64_t NextDoorSortBytes(const DatasetSpec& spec) {
  return spec.paper_edges * 8;
}

// Formats a result cell: the simulated time, or an OOM sentinel.
inline std::string Cell(double sim_ms, bool oom = false) {
  if (oom) {
    return "OOM";
  }
  return Table::Num(sim_ms);
}

// Peak-power model for Fig. 16: sustained bandwidth utilization (coalesced
// traffic) drives a device toward its peak; random-access-heavy mixes leave
// lanes stalled and draw less.
inline double MaxWatts(const WalkResult& result, const DeviceProfile& profile) {
  uint64_t total = result.cost.coalesced_transactions + result.cost.random_transactions;
  double coalesced_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(result.cost.coalesced_transactions) /
                       static_cast<double>(total);
  return profile.idle_watts + (profile.peak_watts - profile.idle_watts) * coalesced_fraction;
}

// Total neighbor-sampling steps a result actually took (dead ends cut walks
// short, so this counts written transitions, not queries x length). The
// numerator of every steps/sec figure the benches report.
inline uint64_t CountSampledSteps(const WalkResult& result) {
  uint64_t steps = 0;
  for (size_t qid = 0; qid < result.num_queries; ++qid) {
    auto path = result.Path(qid);
    for (size_t s = 1; s < path.size() && path[s] != kInvalidNode; ++s) {
      ++steps;
    }
  }
  return steps;
}

// --- Bench run metadata (perf-trajectory attribution) ----------------------
//
// Every --json bench emitter stamps these fields so a CI diff between two
// runs (scripts/perf_trajectory.py) can attribute a swing to a commit, a
// date, or a machine shape instead of guessing.

// Commit under test: GITHUB_SHA in CI, `git rev-parse HEAD` locally,
// "unknown" outside a checkout.
inline std::string BenchGitSha() {
  if (const char* sha = std::getenv("GITHUB_SHA"); sha != nullptr && sha[0] != '\0') {
    return sha;
  }
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    pclose(pipe);
  }
  return sha.empty() ? "unknown" : sha;
}

inline std::string BenchDateUtc() {
  std::time_t now = std::time(nullptr);
  char buf[32] = {};
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  return buf;
}

// Process peak resident set in bytes (getrusage: ru_maxrss is KiB on
// Linux). High-water mark, monotonic over the process lifetime — a bench
// sweeping memory-bounded configs must measure the smallest budget first
// (or fork per config) for per-config attribution. 0 if unavailable.
inline uint64_t BenchPeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// Writes the shared `"meta": {...},` object (with trailing comma) as the
// first member of a bench's JSON document. peak_rss_bytes is sampled at
// call time — benches write JSON after their runs, so it reflects the run's
// high-water mark and lets the perf-trajectory diff catch memory
// regressions alongside throughput ones.
inline void WriteBenchMetaJson(std::FILE* f, const char* bench_name, bool quick) {
  std::fprintf(f,
               "  \"meta\": {\"bench\": \"%s\", \"quick\": %s, \"git_sha\": \"%s\", "
               "\"date_utc\": \"%s\", \"hardware_concurrency\": %u, "
               "\"peak_rss_bytes\": %llu},\n",
               bench_name, quick ? "true" : "false", BenchGitSha().c_str(),
               BenchDateUtc().c_str(), std::max(1u, std::thread::hardware_concurrency()),
               static_cast<unsigned long long>(BenchPeakRssBytes()));
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("host: %u scheduler worker threads (walk paths are thread-count invariant)\n",
              DefaultWorkerThreads());
  std::printf("(sim_ms = substrate-accounted simulated milliseconds; see DESIGN.md)\n\n");
}

}  // namespace flexi

#endif  // FLEXIWALKER_BENCH_BENCH_UTIL_H_
