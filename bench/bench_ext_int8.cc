// §7.2 extension: INT8 edge property weights. Weighted Node2Vec with
// uniform weights, FlexiWalker (INT8) vs FlowWalker, plus the float
// reference columns.
//
// Paper shape: FlexiWalker with INT8 weights keeps a large geomean speedup
// over FlowWalker (27.59x in the paper's setting) while cutting weight-scan
// bytes 4x.
#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Low-precision (INT8) edge weights", "Section 7.2 extension");

  Table table({"dataset", "FlowWalker fp32", "FlowWalker int8", "FXW fp32", "FXW int8",
               "int8 speedup vs FW"});
  std::vector<double> speedups;
  for (const char* name : {"YT", "EU", "AB", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 2048);

    double fw32 = FlowWalkerEngine(false).Run(graph, walk, starts, kBenchSeed).sim_ms;
    double fw8 = FlowWalkerEngine(true).Run(graph, walk, starts, kBenchSeed).sim_ms;
    FlexiWalkerOptions fp32;
    FlexiWalkerOptions int8;
    int8.use_int8_weights = true;
    double fxw32 = FlexiWalkerEngine(fp32).Run(graph, walk, starts, kBenchSeed).sim_ms;
    double fxw8 = FlexiWalkerEngine(int8).Run(graph, walk, starts, kBenchSeed).sim_ms;

    table.AddRow({name, Cell(fw32), Cell(fw8), Cell(fxw32), Cell(fxw8),
                  Table::Num(fw8 / fxw8) + "x"});
    speedups.push_back(fw8 / fxw8);
  }
  table.Print();
  std::printf("\ngeomean FXW-int8 speedup over FlowWalker-int8: %.2fx (paper: 27.59x)\n",
              GeometricMean(speedups));
  return 0;
}
