// Fig. 12: kernel-level ablations on uniform and skewed (alpha=1) weights
// over YT, EU, AB, UK, SK with weighted Node2Vec.
//
//  (a) Reservoir: FlowWalker baseline vs +EXP (ES keys, no prefix sum) vs
//      +EXP+JUMP (full eRVS). Paper: 1.27-1.60x from EXP, 1.44-1.82x total.
//  (b) Rejection: NextDoor baseline (per-step max reduce) vs +Est.Max
//      (eRJS's compiler-generated bound). Paper: 54x-1698x uniform, up to
//      7.27x under skew (many rejected trials).
//  (c) Wavefront stepping (host execution, not a paper figure): the
//      scheduler's batched inner loop at widths {1, 8, 16} — walk-at-a-time
//      vs multi-walk passes with prefetch staging — reported as wall-clock
//      steps/sec, paths asserted bit-identical across widths (non-zero exit
//      on divergence). On one core the widths should be at parity; the
//      prefetch win needs real memory-level parallelism.
//
// --quick shrinks the dataset list and walk sizes for the CI smoke job.
#include <cstring>

#include "bench/bench_util.h"
#include "src/sampling/inverse_transform.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "src/walker/scheduler.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

// Minimal engines that pin one kernel, for the ablation columns.
class ERvsScanOnlyEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsScanStep(ctx, l, q, rng); });
  }
};

class ERvsJumpEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP+JUMP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsJumpStep(ctx, l, q, rng); });
  }
};

void RunDistribution(const std::string& label, WeightDistribution dist, double alpha,
                     bool quick) {
  std::printf("-- %s weights --\n", label.c_str());
  Table rvs_table({"dataset", "FlowWalker", "+EXP", "+EXP+JUMP", "speedup"});
  Table rjs_table({"dataset", "NextDoor", "+Est.Max (eRJS)", "speedup"});
  std::vector<const char*> names = {"YT", "EU", "AB", "UK", "SK"};
  if (quick) {
    names = {"YT"};
  }
  uint32_t length = quick ? 20 : 80;
  size_t queries = quick ? 512 : 2048;
  for (const char* name : names) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, dist, alpha);
    Node2VecWalk walk(2.0, 0.5, length);
    auto starts = BenchStarts(graph, queries);

    double fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double exp_only = ERvsScanOnlyEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double jump = ERvsJumpEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    rvs_table.AddRow({name, Cell(fw), Cell(exp_only), Cell(jump),
                      Table::Num(fw / jump) + "x"});

    bool nd_oom = WouldOom(spec, NextDoorSortBytes(spec));
    double nd = nd_oom ? 0.0 : NextDoorEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    FlexiWalkerOptions rjs_only;
    rjs_only.strategy = SelectionStrategy::kAlwaysRjs;
    double erjs = FlexiWalkerEngine(rjs_only).Run(graph, walk, starts, kBenchSeed).sim_ms;
    rjs_table.AddRow({name, Cell(nd, nd_oom), Cell(erjs),
                      nd_oom ? "-" : Table::Num(nd / erjs) + "x"});
  }
  std::printf("(a) reservoir kernel ablation:\n");
  rvs_table.Print();
  std::printf("(b) rejection kernel ablation:\n");
  rjs_table.Print();
  std::printf("\n");
}

// (c): the same walk workload through the scheduler at increasing wavefront
// widths. sim_ms is width-invariant by construction, so the comparison is
// pure host wall-clock; steps/sec uses the result's actually-sampled steps.
bool RunWavefrontAblation(bool quick) {
  std::printf("-- wavefront stepping (host wall-clock, ITS kernel, Node2Vec) --\n");
  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform, 0.0);
  Node2VecWalk walk(2.0, 0.5, quick ? 20u : 80u);
  auto starts = BenchStarts(graph, quick ? 1024 : 4096);
  StepKernel its = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                      KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };

  Table table({"wavefront", "wall_ms", "Msteps/s", "vs W=1", "paths identical"});
  bool paths_ok = true;
  double w1_ms = 0.0;
  std::vector<NodeId> reference;
  for (uint32_t wavefront : {1u, 8u, 16u}) {
    SchedulerOptions options;
    options.wavefront = wavefront;
    WalkScheduler scheduler(options);
    scheduler.Run(graph, walk, starts, kBenchSeed, its);  // warm-up
    WalkResult result = scheduler.Run(graph, walk, starts, kBenchSeed, its);
    uint64_t steps = CountSampledSteps(result);
    if (wavefront == 1) {
      w1_ms = result.wall_ms;
      reference = std::move(result.paths);
    }
    bool identical = wavefront == 1 || result.paths == reference;
    paths_ok = paths_ok && identical;
    table.AddRow({std::to_string(wavefront), Table::Num(result.wall_ms),
                  Table::Num(static_cast<double>(steps) / result.wall_ms / 1000.0),
                  Table::Num(w1_ms / result.wall_ms) + "x", identical ? "yes" : "NO"});
  }
  std::printf("(c) wavefront stepping ablation:\n");
  table.Print();
  std::printf(
      "paths identical across wavefront widths: %s\n"
      "(W walks advance in lockstep passes with prefetch staging; on a\n"
      "single core expect parity — the win needs memory-level parallelism)\n\n",
      paths_ok ? "yes" : "NO");
  return paths_ok;
}

}  // namespace
}  // namespace flexi

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 1;
    }
  }
  flexi::PrintHeader("Kernel optimization ablations", "Fig. 12 (a)+(b), plus wavefront (c)");
  flexi::RunDistribution("uniform", flexi::WeightDistribution::kUniform, 0.0, quick);
  flexi::RunDistribution("skewed (alpha=1)", flexi::WeightDistribution::kPareto, 1.0, quick);
  // Non-zero exit on wavefront path divergence so the CI smoke gates the
  // batched loop's determinism, not just its throughput.
  return flexi::RunWavefrontAblation(quick) ? 0 : 1;
}
