// Fig. 12: kernel-level ablations on uniform and skewed (alpha=1) weights
// over YT, EU, AB, UK, SK with weighted Node2Vec.
//
//  (a) Reservoir: FlowWalker baseline vs +EXP (ES keys, no prefix sum) vs
//      +EXP+JUMP (full eRVS). Paper: 1.27-1.60x from EXP, 1.44-1.82x total.
//  (b) Rejection: NextDoor baseline (per-step max reduce) vs +Est.Max
//      (eRJS's compiler-generated bound). Paper: 54x-1698x uniform, up to
//      7.27x under skew (many rejected trials).
//  (c) Wavefront stepping (host execution, not a paper figure): the
//      scheduler's batched inner loop at widths {1, 8, 16} — walk-at-a-time
//      vs multi-walk passes with prefetch staging — reported as wall-clock
//      steps/sec, paths asserted bit-identical across widths (non-zero exit
//      on divergence). On one core the widths should be at parity; the
//      prefetch win needs real memory-level parallelism.
//  (d) Compiled step kernels (host execution, src/compiler/jit.h): the
//      interpreted per-step dispatch vs the JIT-specialized function over
//      weighted workloads, reported as wall-clock steps/sec with paths
//      parity-gated (non-zero exit on divergence). Without a usable system
//      compiler the phase reports the fallback reason and skips the gate.
//      The per-config numbers land in BENCH_fig12.json (--json <path>) under
//      "jit_configs" for the CI perf trajectory.
//
// --quick shrinks the dataset list and walk sizes for the CI smoke job.
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/compiler/jit.h"
#include "src/compiler/step_emitter.h"
#include "src/sampling/inverse_transform.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "src/walker/scheduler.h"
#include "src/walks/autoregressive.h"
#include "src/walks/node2vec.h"
#include "src/walks/temporal.h"

namespace flexi {
namespace {

// Minimal engines that pin one kernel, for the ablation columns.
class ERvsScanOnlyEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsScanStep(ctx, l, q, rng); });
  }
};

class ERvsJumpEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP+JUMP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsJumpStep(ctx, l, q, rng); });
  }
};

void RunDistribution(const std::string& label, WeightDistribution dist, double alpha,
                     bool quick) {
  std::printf("-- %s weights --\n", label.c_str());
  Table rvs_table({"dataset", "FlowWalker", "+EXP", "+EXP+JUMP", "speedup"});
  Table rjs_table({"dataset", "NextDoor", "+Est.Max (eRJS)", "speedup"});
  std::vector<const char*> names = {"YT", "EU", "AB", "UK", "SK"};
  if (quick) {
    names = {"YT"};
  }
  uint32_t length = quick ? 20 : 80;
  size_t queries = quick ? 512 : 2048;
  for (const char* name : names) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, dist, alpha);
    Node2VecWalk walk(2.0, 0.5, length);
    auto starts = BenchStarts(graph, queries);

    double fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double exp_only = ERvsScanOnlyEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double jump = ERvsJumpEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    rvs_table.AddRow({name, Cell(fw), Cell(exp_only), Cell(jump),
                      Table::Num(fw / jump) + "x"});

    bool nd_oom = WouldOom(spec, NextDoorSortBytes(spec));
    double nd = nd_oom ? 0.0 : NextDoorEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    FlexiWalkerOptions rjs_only;
    rjs_only.strategy = SelectionStrategy::kAlwaysRjs;
    double erjs = FlexiWalkerEngine(rjs_only).Run(graph, walk, starts, kBenchSeed).sim_ms;
    rjs_table.AddRow({name, Cell(nd, nd_oom), Cell(erjs),
                      nd_oom ? "-" : Table::Num(nd / erjs) + "x"});
  }
  std::printf("(a) reservoir kernel ablation:\n");
  rvs_table.Print();
  std::printf("(b) rejection kernel ablation:\n");
  rjs_table.Print();
  std::printf("\n");
}

// (c): the same walk workload through the scheduler at increasing wavefront
// widths. sim_ms is width-invariant by construction, so the comparison is
// pure host wall-clock; steps/sec uses the result's actually-sampled steps.
bool RunWavefrontAblation(bool quick) {
  std::printf("-- wavefront stepping (host wall-clock, ITS kernel, Node2Vec) --\n");
  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform, 0.0);
  Node2VecWalk walk(2.0, 0.5, quick ? 20u : 80u);
  auto starts = BenchStarts(graph, quick ? 1024 : 4096);
  StepKernel its = [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                      KernelRng& rng) { return InverseTransformStep(ctx, l, q, rng); };

  Table table({"wavefront", "wall_ms", "Msteps/s", "vs W=1", "paths identical"});
  bool paths_ok = true;
  double w1_ms = 0.0;
  std::vector<NodeId> reference;
  for (uint32_t wavefront : {1u, 8u, 16u}) {
    SchedulerOptions options;
    options.wavefront = wavefront;
    WalkScheduler scheduler(options);
    scheduler.Run(graph, walk, starts, kBenchSeed, its);  // warm-up
    WalkResult result = scheduler.Run(graph, walk, starts, kBenchSeed, its);
    uint64_t steps = CountSampledSteps(result);
    if (wavefront == 1) {
      w1_ms = result.wall_ms;
      reference = std::move(result.paths);
    }
    bool identical = wavefront == 1 || result.paths == reference;
    paths_ok = paths_ok && identical;
    table.AddRow({std::to_string(wavefront), Table::Num(result.wall_ms),
                  Table::Num(static_cast<double>(steps) / result.wall_ms / 1000.0),
                  Table::Num(w1_ms / result.wall_ms) + "x", identical ? "yes" : "NO"});
  }
  std::printf("(c) wavefront stepping ablation:\n");
  table.Print();
  std::printf(
      "paths identical across wavefront widths: %s\n"
      "(W walks advance in lockstep passes with prefetch staging; on a\n"
      "single core expect parity — the win needs memory-level parallelism)\n\n",
      paths_ok ? "yes" : "NO");
  return paths_ok;
}

// (d): interpreted vs compiled step kernel, same workload, same seed. The
// comparison is host wall-clock (the device-model charges are identical by
// the parity contract); paths are the gate.
struct JitRow {
  std::string workload;
  const char* mode;  // "interpreted" | "compiled"
  double wall_ms;
  double steps_per_sec;
};

bool RunJitAblation(bool quick, std::vector<JitRow>& rows) {
  std::printf("-- compiled step kernels (host wall-clock, FlexiWalker) --\n");
  const DatasetSpec& spec = DatasetByName("YT");
  Graph graph = LoadDataset(spec, WeightDistribution::kUniform, 0.0);
  if (!graph.temporal()) {
    AssignTimestamps(graph, 1.0f, kBenchSeed + 3);
  }
  uint32_t length = quick ? 20u : 80u;
  auto starts = BenchStarts(graph, quick ? 1024 : 4096);

  std::vector<std::unique_ptr<WalkLogic>> workloads;
  workloads.push_back(std::make_unique<Node2VecWalk>(2.0, 0.5, length));
  workloads.push_back(std::make_unique<TemporalDecayWalk>(0.1, length));
  workloads.push_back(std::make_unique<AutoregressiveWalk>(0.5, length));

  // Pre-flight: compile one kernel synchronously. A broken environment (no
  // compiler, no headers) surfaces here once, and the phase degrades to a
  // report instead of a gate — the engine itself falls back silently.
  bool jit_usable = true;
  {
    std::string reason;
    std::string source =
        jit::EmitStepKernelSource(workloads.front()->program(), {}, &reason);
    auto probe = jit::KernelCache::Global().GetOrCompile(source, "", /*async=*/false);
    if (!probe->WaitReady()) {
      std::printf("compiled kernels unavailable (%s: %s); reporting interpreted only,\n"
                  "parity gate skipped\n\n",
                  probe->fallback_reason().c_str(), probe->detail().c_str());
      jit_usable = false;
    }
  }

  Table table({"workload", "interpreted Msteps/s", "compiled Msteps/s", "speedup",
               "paths identical"});
  bool paths_ok = true;
  for (const auto& workload : workloads) {
    FlexiWalkerOptions off;
    off.edge_cost_ratio = 4.0;  // pinned: measure the walk, not profiling
    FlexiWalkerEngine interpreted_engine(off);
    interpreted_engine.Run(graph, *workload, starts, kBenchSeed);  // warm-up
    WalkResult interpreted = interpreted_engine.Run(graph, *workload, starts, kBenchSeed);
    uint64_t steps = CountSampledSteps(interpreted);
    double interp_sps = static_cast<double>(steps) / interpreted.wall_ms * 1000.0;
    rows.push_back({workload->name(), "interpreted", interpreted.wall_ms, interp_sps});

    if (!jit_usable) {
      table.AddRow({workload->name(), Table::Num(interp_sps / 1e6), "-", "-", "-"});
      continue;
    }
    FlexiWalkerOptions on = off;
    on.jit = jit::JitMode::kOn;
    FlexiWalkerEngine compiled_engine(on);
    compiled_engine.Run(graph, *workload, starts, kBenchSeed);  // warm-up + compile
    WalkResult compiled = compiled_engine.Run(graph, *workload, starts, kBenchSeed);
    double compiled_sps = static_cast<double>(steps) / compiled.wall_ms * 1000.0;
    rows.push_back({workload->name(), "compiled", compiled.wall_ms, compiled_sps});

    bool identical = compiled.paths == interpreted.paths &&
                     compiled.selection.chose_rjs == interpreted.selection.chose_rjs &&
                     compiled.selection.chose_rvs == interpreted.selection.chose_rvs;
    paths_ok = paths_ok && identical;
    table.AddRow({workload->name(), Table::Num(interp_sps / 1e6),
                  Table::Num(compiled_sps / 1e6),
                  Table::Num(interpreted.wall_ms / compiled.wall_ms) + "x",
                  identical ? "yes" : "NO"});
  }
  std::printf("(d) compiled step kernel ablation:\n");
  table.Print();
  if (jit_usable) {
    std::printf(
        "paths identical interpreted vs compiled: %s\n"
        "(the compiled kernel removes per-step virtual dispatch and strategy\n"
        "branching; speedups shrink on loaded 1-core CI runners where wall\n"
        "clock is scheduling-noise bound — parity is the hard gate)\n\n",
        paths_ok ? "yes" : "NO");
  }
  return paths_ok;
}

}  // namespace
}  // namespace flexi

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_fig12.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 1;
    }
  }
  flexi::PrintHeader("Kernel optimization ablations",
                     "Fig. 12 (a)+(b), plus wavefront (c) and compiled kernels (d)");
  flexi::RunDistribution("uniform", flexi::WeightDistribution::kUniform, 0.0, quick);
  flexi::RunDistribution("skewed (alpha=1)", flexi::WeightDistribution::kPareto, 1.0, quick);
  // Non-zero exit on wavefront or compiled-kernel path divergence so the CI
  // smoke gates both determinism contracts, not just throughput.
  bool wavefront_ok = flexi::RunWavefrontAblation(quick);
  std::vector<flexi::JitRow> jit_rows;
  bool jit_ok = flexi::RunJitAblation(quick, jit_rows);

  // BENCH_fig12.json: the compiled-kernel sweep for the CI perf trajectory
  // (scripts/perf_trajectory.py matches jit_configs on workload + mode).
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    flexi::WriteBenchMetaJson(json, "fig12_kernel_ablation", quick);
    std::fprintf(json, "  \"jit_configs\": [\n");
    for (size_t i = 0; i < jit_rows.size(); ++i) {
      const flexi::JitRow& row = jit_rows[i];
      std::fprintf(json,
                   "    {\"workload\": \"%s\", \"mode\": \"%s\", \"wall_ms\": %.3f, "
                   "\"steps_per_sec\": %.1f}%s\n",
                   row.workload.c_str(), row.mode, row.wall_ms, row.steps_per_sec,
                   i + 1 == jit_rows.size() ? "" : ",");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("compiled-kernel steps/sec written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  return (wavefront_ok && jit_ok) ? 0 : 1;
}
