// Fig. 12: kernel-level ablations on uniform and skewed (alpha=1) weights
// over YT, EU, AB, UK, SK with weighted Node2Vec.
//
//  (a) Reservoir: FlowWalker baseline vs +EXP (ES keys, no prefix sum) vs
//      +EXP+JUMP (full eRVS). Paper: 1.27-1.60x from EXP, 1.44-1.82x total.
//  (b) Rejection: NextDoor baseline (per-step max reduce) vs +Est.Max
//      (eRJS's compiler-generated bound). Paper: 54x-1698x uniform, up to
//      7.27x under skew (many rejected trials).
#include "bench/bench_util.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "src/walker/scheduler.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

// Minimal engines that pin one kernel, for the ablation columns.
class ERvsScanOnlyEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsScanStep(ctx, l, q, rng); });
  }
};

class ERvsJumpEngine : public Engine {
 public:
  std::string name() const override { return "eRVS(+EXP+JUMP)"; }
  WalkResult Run(const Graph& graph, const WalkLogic& logic, std::span<const NodeId> starts,
                 uint64_t seed) override {
    return WalkScheduler().Run(graph, logic, starts, seed,
                               [](const WalkContext& ctx, const WalkLogic& l, const QueryState& q,
                                  KernelRng& rng) { return ERvsJumpStep(ctx, l, q, rng); });
  }
};

void RunDistribution(const std::string& label, WeightDistribution dist, double alpha) {
  std::printf("-- %s weights --\n", label.c_str());
  Table rvs_table({"dataset", "FlowWalker", "+EXP", "+EXP+JUMP", "speedup"});
  Table rjs_table({"dataset", "NextDoor", "+Est.Max (eRJS)", "speedup"});
  for (const char* name : {"YT", "EU", "AB", "UK", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, dist, alpha);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 2048);

    double fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double exp_only = ERvsScanOnlyEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    double jump = ERvsJumpEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    rvs_table.AddRow({name, Cell(fw), Cell(exp_only), Cell(jump),
                      Table::Num(fw / jump) + "x"});

    bool nd_oom = WouldOom(spec, NextDoorSortBytes(spec));
    double nd = nd_oom ? 0.0 : NextDoorEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
    FlexiWalkerOptions rjs_only;
    rjs_only.strategy = SelectionStrategy::kAlwaysRjs;
    double erjs = FlexiWalkerEngine(rjs_only).Run(graph, walk, starts, kBenchSeed).sim_ms;
    rjs_table.AddRow({name, Cell(nd, nd_oom), Cell(erjs),
                      nd_oom ? "-" : Table::Num(nd / erjs) + "x"});
  }
  std::printf("(a) reservoir kernel ablation:\n");
  rvs_table.Print();
  std::printf("(b) rejection kernel ablation:\n");
  rjs_table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace flexi

int main() {
  flexi::PrintHeader("Kernel optimization ablations", "Fig. 12 (a)+(b)");
  flexi::RunDistribution("uniform", flexi::WeightDistribution::kUniform, 0.0);
  flexi::RunDistribution("skewed (alpha=1)", flexi::WeightDistribution::kPareto, 1.0);
  return 0;
}
