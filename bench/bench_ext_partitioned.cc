// §7.2 extension: graph partitioning across devices for larger-than-VRAM
// graphs. Compares the duplicated-graph mode (Fig. 15) with hash-partitioned
// adjacency, where walkers migrate between devices on ownership crossings.
//
// Expected shape (the paper's own prediction): partitioning removes the
// per-device memory multiplier but the I/O-bound walks pay "considerable
// communication overhead" — migrations happen on (D-1)/D of the steps, so
// partitioned scaling is far below the duplicated mode's near-linear curve.
#include "bench/bench_util.h"
#include "src/walker/multi_device.h"
#include "src/walker/partitioned.h"
#include "src/walks/deepwalk.h"

int main() {
  using namespace flexi;
  PrintHeader("Partitioned multi-device execution", "Section 7.2 extension (larger graphs)");

  Table table({"dataset", "devices", "duplicated speedup", "partitioned speedup",
               "migration rate", "memory per device"});
  for (const char* name : {"EU", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    DeepWalk walk(80);
    auto starts = BenchStarts(graph, 2048);
    InterconnectProfile link;

    auto make_engine = [] {
      FlexiWalkerOptions options;
      options.edge_cost_ratio = 4.0;
      return std::unique_ptr<Engine>(new FlexiWalkerEngine(options));
    };
    double dup_single =
        RunMultiDevice(make_engine, graph, walk, starts, 1, QueryMapping::kHash, kBenchSeed)
            .makespan_sim_ms;
    double part_single = RunPartitioned(graph, walk, starts, 1, link, kBenchSeed)
                             .makespan_sim_ms;

    for (uint32_t devices : {2u, 4u}) {
      auto dup = RunMultiDevice(make_engine, graph, walk, starts, devices,
                                QueryMapping::kHash, kBenchSeed);
      auto part = RunPartitioned(graph, walk, starts, devices, link, kBenchSeed);
      double mem_fraction = 1.0 / static_cast<double>(devices);
      table.AddRow({name, std::to_string(devices),
                    Table::Num(dup.SpeedupOver(dup_single)) + "x",
                    Table::Num(part_single / part.makespan_sim_ms) + "x",
                    Table::Num(part.MigrationRate() * 100.0) + "%",
                    Table::Num(mem_fraction * 100.0) + "% (dup: 100%)"});
    }
  }
  table.Print();
  return 0;
}
