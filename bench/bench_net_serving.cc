// Network serving load generator: drives a WalkServer over localhost TCP
// with many single-query closed-loop clients and measures QPS and latency
// percentiles as a function of the request-coalescing window.
//
// Two claims are demonstrated (the ISSUE 3 acceptance criteria):
//
//   1. Determinism across the socket — one client pipelining requests gets
//      paths bit-identical to a one-shot FlexiWalkerEngine::Run over the
//      same starts in submission order, for every coalesce window and
//      pipeline depth tried. Checked exactly; any mismatch fails the run.
//   2. Coalescing pays — with many 1-query clients, a nonzero window merges
//      requests into scheduler-sized batches (see the queries/batch
//      column), lifting QPS over window=0 (coalescing disabled: one service
//      batch per request) by amortizing everything per-batch: dispatcher +
//      completer wakeups, pool job setup, result plumbing, and — via the
//      server's corked writes — one response send() per connection per
//      batch instead of per request. The effect scales with how cheap a
//      query is relative to those fixed costs, so the load phase serves the
//      cheapest workload in the repo: DeepWalk on the cached static-walk
//      fast path (O(1) per step). A final line shows what that fast path
//      itself buys at a fixed window (ROADMAP's BuildNodeAliasTables
//      consumer).
//
// Clients are "burst closed loop": each keeps `burst` single-query requests
// in flight, so the admission stream stays busy without lock-stepping every
// client to the same batch boundary. Latency numbers are wall-clock on the
// host and vary by machine; the QPS shape across windows is the result.
//
// Connection-count sweep (the event-loop tentpole's acceptance criterion):
// N concurrent connections — far past what a thread-per-connection reader
// could politely host — drive TWO registered workloads over the epoll event
// loop, one request in flight per connection. QPS/p50/p99 vs N lands in
// BENCH_net.json (net_configs; --json <path> overrides) for the CI perf
// trajectory, and every sweep re-verifies bit-parity per workload: served
// rows, sorted by service-global query id (= admission order, however the
// arrival interleaving went), must equal a one-shot engine run over the
// starts in that order.
//
// Overload phase (the deadline tentpole's acceptance criteria): open-loop
// traffic at ~2x the measured closed-loop capacity, every request carrying
// a tight deadline_us, against a baseline run of the same overload with no
// deadlines. Two gates, both hard failures:
//   (i)  every completed (non-expired) response is bit-identical to the
//        one-shot engine's row for its service-global query id — shedding
//        must never perturb the work it did not shed;
//   (ii) goodput — budget-meeting completions per second — with shedding
//        is at least the baseline's provably on-time rate under the same
//        offered load. Deadlines anchor at server receipt (wire v3), so
//        the shed run's deliveries are on-time by enforcement; the
//        baseline is counted by end-to-end latency, a conservative lower
//        bound on its server-anchored on-time rate. Results land in
//        BENCH_net.json (deadline_configs) for the CI perf trajectory.
//
// --quick shrinks the run for CI smoke.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/walk_client.h"
#include "src/net/walk_server.h"
#include "src/obs/metrics.h"
#include "src/walker/walk_service.h"
#include "src/walks/deepwalk.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

struct LoadStats {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double queries_per_batch = 0.0;
  uint64_t batches = 0;
};

// One serving stack per configuration: fresh service (fresh global-id
// cursor) + server on an ephemeral port.
struct Stack {
  std::unique_ptr<WalkService> service;
  std::unique_ptr<WalkServer> server;

  Stack(const Graph& graph, const WalkLogic& walk, const FlexiWalkerOptions& options,
        double coalesce_ms, unsigned pipeline_depth, size_t max_batch) {
    service = MakeFlexiWalkerService(graph, walk, options, kBenchSeed, pipeline_depth);
    WalkServer::Options server_options;
    server_options.port = 0;
    server_options.coalescer.max_delay_ms = coalesce_ms;
    server_options.coalescer.max_batch_queries = max_batch;
    server.reset(new WalkServer(*service, graph.num_nodes(), server_options));
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      std::exit(1);
    }
  }

  ~Stack() {
    server->Stop();
    service->Shutdown();
  }
};

// Claim 1: pipelined requests from one connection reassemble, by
// first_query_id, into exactly the one-shot engine's path matrix.
bool CheckServedParity(const Graph& graph, const WalkLogic& walk,
                       const FlexiWalkerOptions& options, double coalesce_ms,
                       unsigned pipeline_depth, size_t requests) {
  Stack stack(graph, walk, options, coalesce_ms, pipeline_depth, /*max_batch=*/512);
  WalkClient client;
  if (!client.Connect("127.0.0.1", stack.server->port())) {
    return false;
  }
  std::vector<NodeId> all_starts;
  std::vector<std::future<WalkClient::Result>> futures;
  for (size_t r = 0; r < requests; ++r) {
    std::vector<NodeId> starts;
    for (size_t i = 0; i <= r % 5; ++i) {
      starts.push_back(static_cast<NodeId>((r * 13 + i * 7) % graph.num_nodes()));
    }
    all_starts.insert(all_starts.end(), starts.begin(), starts.end());
    futures.push_back(client.Submit(std::move(starts)));
  }
  WalkResult engine_result = FlexiWalkerEngine(options).Run(graph, walk, all_starts, kBenchSeed);
  std::vector<NodeId> served(engine_result.paths.size(), kInvalidNode);
  for (auto& future : futures) {
    WalkClient::Result result = future.get();
    if ((result.first_query_id + result.num_queries) * result.path_stride > served.size()) {
      return false;
    }
    std::copy(result.paths.begin(), result.paths.end(),
              served.begin() + result.first_query_id * result.path_stride);
  }
  return served == engine_result.paths;
}

// Claim 2: load generation. `clients` threads each keep `burst` single-query
// requests in flight (submit the burst, await it, repeat) — many 1-query
// clients with enough concurrency that the server's admission stream stays
// busy, rather than lock-stepping every client to the same batch boundary.
LoadStats RunLoad(const Graph& graph, const WalkLogic& walk, const FlexiWalkerOptions& options,
                  double coalesce_ms, unsigned pipeline_depth, int clients, int burst,
                  int requests_per_client) {
  Stack stack(graph, walk, options, coalesce_ms, pipeline_depth,
              /*max_batch=*/static_cast<size_t>(clients * burst));
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<bool> failed{false};
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WalkClient client;
      if (!client.Connect("127.0.0.1", stack.server->port())) {
        failed.store(true);
        return;
      }
      latencies[c].reserve(requests_per_client);
      for (int r = 0; r < requests_per_client; r += burst) {
        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<WalkClient::Result>> futures;
        for (int b = 0; b < burst && r + b < requests_per_client; ++b) {
          NodeId start = static_cast<NodeId>((c * 131 + (r + b) * 7) % graph.num_nodes());
          futures.push_back(client.Submit({start}));
        }
        for (auto& future : futures) {
          WalkClient::Result result = future.get();
          auto t1 = std::chrono::steady_clock::now();
          if (result.num_queries != 1) {
            failed.store(true);
            return;
          }
          latencies[c].push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  auto wall_end = std::chrono::steady_clock::now();
  if (failed.load()) {
    std::fprintf(stderr, "load generation failed\n");
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  double wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  LoadStats stats;
  stats.qps = static_cast<double>(all.size()) / wall_s;
  stats.p50_us = obs::PercentileOfSorted(all, 0.50);
  stats.p99_us = obs::PercentileOfSorted(all, 0.99);
  stats.batches = stack.service->batches_completed();
  stats.queries_per_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stack.service->queries_submitted()) /
                               static_cast<double>(stats.batches);
  return stats;
}

// Connection-count sweep row: N connections, one request in flight each,
// split across two workloads on one server.
struct SweepRow {
  int connections = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool parity = false;
};

// One request's record for post-hoc parity: which workload, where the
// service placed it (global id = admission order), what was asked and what
// came back.
struct RequestRecord {
  uint64_t first_query_id = 0;
  NodeId start = 0;
  std::vector<NodeId> paths;
};

// Drives `connections` concurrent clients (each its own connection, one
// request in flight) against a two-workload event-loop server, then checks
// each workload's served rows — sorted by global query id — against a
// one-shot engine run over the starts in that admission order. Arrival
// interleaving across connections is nondeterministic; the sorted-by-id
// reconstruction is exactly the order the coalescer admitted, so parity
// must be bit-exact anyway.
SweepRow RunConnectionSweep(const Graph& graph, const WalkLogic& walk_a, const WalkLogic& walk_b,
                            const FlexiWalkerOptions& options, int connections,
                            int requests_per_conn) {
  auto service_a = MakeFlexiWalkerService(graph, walk_a, options, kBenchSeed, 2);
  auto service_b = MakeFlexiWalkerService(graph, walk_b, options, kBenchSeed + 1, 2);
  WalkServer::Options server_options;
  server_options.port = 0;
  server_options.backlog = 1024;
  server_options.event_threads = 2;
  server_options.coalescer.max_delay_ms = 0.3;
  WalkServer server(*service_a, graph.num_nodes(), server_options);
  BatchCoalescer::Options admission_b;
  admission_b.max_delay_ms = 0.3;
  uint32_t workload_b = server.RegisterWorkload("b", *service_b, admission_b);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    std::exit(1);
  }

  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::vector<RequestRecord>> records_a(connections);
  std::vector<std::vector<RequestRecord>> records_b(connections);
  std::atomic<bool> failed{false};
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      WalkClient client;
      if (!client.Connect("127.0.0.1", server.port())) {
        failed.store(true);
        return;
      }
      for (int r = 0; r < requests_per_conn; ++r) {
        uint32_t workload = static_cast<uint32_t>((c + r) % 2 == 0 ? 0 : workload_b);
        NodeId start = static_cast<NodeId>((c * 257 + r * 31) % graph.num_nodes());
        auto t0 = std::chrono::steady_clock::now();
        WalkClient::Result result;
        try {
          result = client.Walk({start}, workload == 0 ? 0 : workload_b);
        } catch (const std::exception&) {
          failed.store(true);
          return;
        }
        auto t1 = std::chrono::steady_clock::now();
        latencies[c].push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
        RequestRecord record{result.first_query_id, start,
                             {result.paths.begin(), result.paths.end()}};
        (workload == 0 ? records_a : records_b)[c].push_back(std::move(record));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  auto wall_end = std::chrono::steady_clock::now();
  if (failed.load()) {
    std::fprintf(stderr, "connection sweep failed at %d connections\n", connections);
    std::exit(1);
  }
  server.Stop();
  service_a->Shutdown();
  service_b->Shutdown();

  // Per-workload parity: admission order is the sort by global id.
  auto check = [&](std::vector<std::vector<RequestRecord>>& per_conn, const WalkLogic& walk,
                   uint64_t seed) {
    std::vector<RequestRecord> all;
    for (auto& records : per_conn) {
      for (auto& record : records) {
        all.push_back(std::move(record));
      }
    }
    std::sort(all.begin(), all.end(),
              [](const RequestRecord& x, const RequestRecord& y) {
                return x.first_query_id < y.first_query_id;
              });
    std::vector<NodeId> starts;
    std::vector<NodeId> served;
    for (auto& record : all) {
      starts.push_back(record.start);
      served.insert(served.end(), record.paths.begin(), record.paths.end());
    }
    WalkResult engine_result = FlexiWalkerEngine(options).Run(graph, walk, starts, seed);
    return served == engine_result.paths;
  };
  SweepRow row;
  row.connections = connections;
  row.parity = check(records_a, walk_a, kBenchSeed) && check(records_b, walk_b, kBenchSeed + 1);
  std::vector<double> all;
  for (auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all.begin(), all.end());
  double wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  row.qps = static_cast<double>(all.size()) / wall_s;
  row.p50_us = obs::PercentileOfSorted(all, 0.50);
  row.p99_us = obs::PercentileOfSorted(all, 0.99);
  return row;
}

// One overload run: `clients` threads submit single-query requests open
// loop (paced by wall clock, not by completions) at rate_qps total for
// duration_s, harvesting responses as they become ready. deadline_us == 0
// is the no-shedding baseline. The admission quota is deliberately small so
// the in-service queue delay is bounded and the deadline budget is spent
// where shedding can act on it.
struct OverloadRun {
  double wall_s = 0.0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t expired = 0;  // kDeadlineExceeded answers (any shedding stage)
  uint64_t errors = 0;
  std::vector<double> latencies_us;  // completed requests only
  bool parity = true;
};

OverloadRun RunOverload(const Graph& graph, const WalkLogic& walk,
                        const FlexiWalkerOptions& options, double rate_qps, double duration_s,
                        uint64_t deadline_us, int clients) {
  auto service = MakeFlexiWalkerService(graph, walk, options, kBenchSeed, 2);
  WalkServer::Options server_options;
  server_options.port = 0;
  server_options.backlog = 256;
  server_options.coalescer.max_delay_ms = 0.3;
  server_options.coalescer.max_batch_queries = 512;
  server_options.coalescer.max_outstanding_queries = 256;
  WalkServer server(*service, graph.num_nodes(), server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    std::exit(1);
  }

  struct ClientOut {
    std::vector<double> latencies;
    std::vector<RequestRecord> records;
    uint64_t submitted = 0;
    uint64_t expired = 0;
    uint64_t errors = 0;
  };
  std::vector<ClientOut> outs(clients);
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WalkClient client;
      ClientOut& out = outs[c];
      if (!client.Connect("127.0.0.1", server.port())) {
        out.errors++;
        return;
      }
      struct Pending {
        std::future<WalkClient::Result> future;
        std::chrono::steady_clock::time_point t0;
        NodeId start;
      };
      std::deque<Pending> pending;
      auto harvest = [&](bool drain) {
        while (!pending.empty()) {
          if (!drain && pending.front().future.wait_for(std::chrono::seconds(0)) !=
                            std::future_status::ready) {
            return;
          }
          Pending request = std::move(pending.front());
          pending.pop_front();
          try {
            WalkClient::Result result = request.future.get();
            out.latencies.push_back(std::chrono::duration<double, std::micro>(
                                        std::chrono::steady_clock::now() - request.t0)
                                        .count());
            out.records.push_back({result.first_query_id, request.start,
                                   {result.paths.begin(), result.paths.end()}});
          } catch (const ServerError& e) {
            if (e.code() == WireErrorCode::kDeadlineExceeded) {
              out.expired++;
            } else {
              out.errors++;
            }
          } catch (const std::exception&) {
            out.errors++;
          }
        }
      };
      auto interval =
          std::chrono::nanoseconds(static_cast<uint64_t>(1e9 * clients / rate_qps));
      auto next = std::chrono::steady_clock::now();
      auto end = next + std::chrono::nanoseconds(static_cast<uint64_t>(duration_s * 1e9));
      while (std::chrono::steady_clock::now() < end) {
        NodeId start =
            static_cast<NodeId>((c * 131 + out.submitted * 7) % graph.num_nodes());
        auto t0 = std::chrono::steady_clock::now();
        pending.push_back({client.Submit({start}, 0, deadline_us), t0, start});
        out.submitted++;
        harvest(false);
        next += interval;  // lateness is not repaid by bursting: fixed pacing
        std::this_thread::sleep_until(next);
      }
      harvest(true);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  auto wall_end = std::chrono::steady_clock::now();

  OverloadRun run;
  run.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  for (ClientOut& out : outs) {
    run.submitted += out.submitted;
    run.expired += out.expired;
    run.errors += out.errors;
    run.latencies_us.insert(run.latencies_us.end(), out.latencies.begin(), out.latencies.end());
  }
  run.completed = run.latencies_us.size();
  std::sort(run.latencies_us.begin(), run.latencies_us.end());

  // Gate (i): the service assigned global ids 0..admitted-1 to the queries
  // it actually ran. Flush- and decode-shed requests never consumed ids; a
  // mid-run-cancelled batch's members did, but delivered nothing — their
  // ids are holes. Reconstruct the starts-by-id array (holes filled with a
  // placeholder whose row is never compared) and check every completed
  // response against the one-shot engine's row for its id.
  uint64_t admitted = service->queries_submitted();
  if (admitted > 0) {
    std::vector<NodeId> starts_by_id(admitted, 0);
    std::vector<const RequestRecord*> by_id(admitted, nullptr);
    for (ClientOut& out : outs) {
      for (RequestRecord& record : out.records) {
        if (record.first_query_id >= admitted) {
          run.parity = false;
          continue;
        }
        starts_by_id[record.first_query_id] = record.start;
        by_id[record.first_query_id] = &record;
      }
    }
    WalkResult reference = FlexiWalkerEngine(options).Run(graph, walk, starts_by_id, kBenchSeed);
    size_t stride = reference.paths.size() / admitted;
    for (uint64_t id = 0; id < admitted; ++id) {
      if (by_id[id] == nullptr) {
        continue;  // shed mid-run: id consumed, nothing delivered to compare
      }
      const std::vector<NodeId>& row = by_id[id]->paths;
      if (row.size() != stride ||
          !std::equal(row.begin(), row.end(), reference.paths.begin() + id * stride)) {
        run.parity = false;
      }
    }
  }
  server.Stop();
  service->Shutdown();
  return run;
}

// On-time completions per second: the fraction of completed responses whose
// end-to-end latency stayed within the deadline budget.
double OnTimeQps(const OverloadRun& run, uint64_t deadline_us) {
  size_t on_time = static_cast<size_t>(
      std::upper_bound(run.latencies_us.begin(), run.latencies_us.end(),
                       static_cast<double>(deadline_us)) -
      run.latencies_us.begin());
  return run.wall_s > 0.0 ? static_cast<double>(on_time) / run.wall_s : 0.0;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 1;
    }
  }
  PrintHeader("Network serving: QPS / latency vs coalesce window",
              "ISSUE 3 tentpole; docs/SERVING.md \"Network serving\"");

  Graph graph = LoadDataset(DatasetByName("YT"), WeightDistribution::kUniform);
  Node2VecWalk walk(2.0, 0.5, 80);
  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;  // pin: profiling is not what this measures
  options.host_threads = 0;       // hardware default

  // --- Claim 1: served paths == one-shot engine, all configurations. ---
  struct ParityConfig {
    double coalesce_ms;
    unsigned depth;
  };
  size_t parity_requests = quick ? 24 : 64;
  bool parity_ok = true;
  for (ParityConfig config :
       {ParityConfig{0.0, 1}, ParityConfig{0.5, 1}, ParityConfig{0.5, 4}, ParityConfig{2.0, 2}}) {
    bool ok = CheckServedParity(graph, walk, options, config.coalesce_ms, config.depth,
                                parity_requests);
    std::printf("parity vs one-shot engine | window %.1f ms | pipeline %u : %s\n",
                config.coalesce_ms, config.depth, ok ? "bit-identical" : "MISMATCH");
    parity_ok &= ok;
  }
  if (!parity_ok) {
    std::fprintf(stderr, "served paths diverged from the one-shot engine\n");
    return 1;
  }

  // --- Claim 2: many 1-query closed-loop clients vs coalesce window. The
  // served workload is DeepWalk on the cached static-walk fast path, whose
  // O(1) steps make per-batch dispatch the dominant per-query cost — the
  // regime request coalescing exists for. ---
  DeepWalk deepwalk(16);
  FlexiWalkerOptions cached_options = options;
  cached_options.cache_static_tables = true;
  int clients = 16;
  int burst = 8;
  int requests_per_client = quick ? 400 : 1200;
  unsigned pipeline_depth = 2;
  std::printf("\n%d clients x %d single-query requests (%d in flight per client), deepwalk "
              "len-16 on cached static tables, pipeline %u\n",
              clients, requests_per_client, burst, pipeline_depth);
  Table table({"window_us", "QPS", "p50_us", "p99_us", "batches", "queries/batch"});
  double qps_window0 = 0.0;
  double qps_best = 0.0;
  double best_window_us = 0.0;
  for (double window_us : {0.0, 100.0, 300.0, 1000.0}) {
    LoadStats stats = RunLoad(graph, deepwalk, cached_options, window_us / 1000.0,
                              pipeline_depth, clients, burst, requests_per_client);
    if (window_us == 0.0) {
      qps_window0 = stats.qps;
    } else if (stats.qps > qps_best) {
      qps_best = stats.qps;
      best_window_us = window_us;
    }
    table.AddRow({Table::Num(window_us), Table::Num(stats.qps), Table::Num(stats.p50_us),
                  Table::Num(stats.p99_us), std::to_string(stats.batches),
                  Table::Num(stats.queries_per_batch)});
  }
  table.Print();
  std::printf("\ncoalescing speedup (best nonzero window vs window=0): %.2fx\n",
              qps_window0 > 0.0 ? qps_best / qps_window0 : 0.0);

  // --- Satellite: what the cached static-walk fast path itself buys, at
  // the best coalesce window found above. ---
  FlexiWalkerOptions uncached_options = options;
  uncached_options.cache_static_tables = false;
  LoadStats without_cache = RunLoad(graph, deepwalk, uncached_options, best_window_us / 1000.0,
                                    pipeline_depth, clients, burst, requests_per_client);
  std::printf("static-table cache off (same %g us window): %.1f QPS -> on: %.1f QPS "
              "(%.2fx from skipping per-step kernels)\n",
              best_window_us, without_cache.qps, qps_best,
              without_cache.qps > 0.0 ? qps_best / without_cache.qps : 0.0);
  std::printf("served paths stayed bit-identical to the one-shot engine in every "
              "configuration above.\n");

  // --- Tentpole: connection-count sweep on the epoll event loop, two
  // workloads on one server, per-workload bit-parity re-checked at every
  // scale. ---
  DeepWalk sweep_walk_b(16);
  std::vector<int> connection_counts = quick ? std::vector<int>{64, 256}
                                             : std::vector<int>{64, 128, 256, 512};
  int requests_per_conn = quick ? 8 : 32;
  std::printf("\nconnection sweep: N connections x %d single-query requests, one in flight "
              "each, 2 workloads (deepwalk len-16 cached x2), epoll event loop, 2 event "
              "threads\n",
              requests_per_conn);
  Table sweep_table({"connections", "QPS", "p50_us", "p99_us", "parity"});
  std::vector<SweepRow> sweep_rows;
  bool sweep_parity_ok = true;
  for (int connections : connection_counts) {
    SweepRow row = RunConnectionSweep(graph, deepwalk, sweep_walk_b, cached_options, connections,
                                      requests_per_conn);
    sweep_parity_ok &= row.parity;
    sweep_table.AddRow({std::to_string(row.connections), Table::Num(row.qps),
                        Table::Num(row.p50_us), Table::Num(row.p99_us),
                        row.parity ? "bit-identical" : "MISMATCH"});
    sweep_rows.push_back(row);
  }
  sweep_table.Print();
  if (!sweep_parity_ok) {
    std::fprintf(stderr, "connection sweep paths diverged from the one-shot engines\n");
    return 1;
  }

  // --- Robustness tentpole: deadline shedding under overload. Open-loop
  // traffic at ~2x the best closed-loop QPS measured above; the baseline
  // run carries no deadlines, then each deadline config repeats the same
  // offered load with every request budgeted. ---
  double capacity_qps = qps_best;
  double overload_rate = 2.0 * capacity_qps;
  double overload_duration_s = quick ? 0.6 : 1.5;
  int overload_clients = quick ? 4 : 8;
  std::printf("\noverload: open loop at 2x capacity (%.0f QPS offered, %d clients, %.1f s), "
              "deepwalk len-16 cached, admission quota 256\n",
              overload_rate, overload_clients, overload_duration_s);
  OverloadRun baseline = RunOverload(graph, deepwalk, cached_options, overload_rate,
                                     overload_duration_s, /*deadline_us=*/0, overload_clients);
  struct DeadlineRow {
    uint64_t deadline_us = 0;
    double offered_qps = 0.0;
    double goodput_qps = 0.0;
    double baseline_ontime_qps = 0.0;
    OverloadRun run;
  };
  std::vector<DeadlineRow> deadline_rows;
  Table overload_table({"deadline_us", "offered_qps", "completed", "expired", "goodput_qps",
                        "baseline_ontime_qps", "parity"});
  bool overload_ok = baseline.parity;
  for (uint64_t deadline_us : {uint64_t{5'000}, uint64_t{20'000}}) {
    DeadlineRow row;
    row.deadline_us = deadline_us;
    row.run = RunOverload(graph, deepwalk, cached_options, overload_rate, overload_duration_s,
                          deadline_us, overload_clients);
    row.offered_qps = row.run.wall_s > 0.0
                          ? static_cast<double>(row.run.submitted) / row.run.wall_s
                          : 0.0;
    // Goodput with shedding = deliveries per second: the wire contract
    // anchors deadline_us at the server's receipt of the frame, and the
    // three shedding stages answered kDeadlineExceeded to everything that
    // lapsed — every delivered response passed that enforcement. The
    // baseline has no server-side certification, so count the completions
    // that provably met the budget: end-to-end latency within deadline_us
    // (e2e bounds the server-anchored latency from above, so this
    // overcounts nothing; client-side socket queueing makes it a lower
    // bound, which only makes the gate harder to hold by accident).
    row.goodput_qps = row.run.wall_s > 0.0
                          ? static_cast<double>(row.run.completed) / row.run.wall_s
                          : 0.0;
    row.baseline_ontime_qps = OnTimeQps(baseline, deadline_us);
    overload_ok &= row.run.parity;
    if (row.goodput_qps < row.baseline_ontime_qps) {
      std::fprintf(stderr,
                   "goodput gate failed at deadline %llu us: %.1f on-time QPS with shedding "
                   "< %.1f without\n",
                   static_cast<unsigned long long>(deadline_us), row.goodput_qps,
                   row.baseline_ontime_qps);
      overload_ok = false;
    }
    overload_table.AddRow({std::to_string(row.deadline_us), Table::Num(row.offered_qps),
                           std::to_string(row.run.completed), std::to_string(row.run.expired),
                           Table::Num(row.goodput_qps), Table::Num(row.baseline_ontime_qps),
                           row.run.parity ? "bit-identical" : "MISMATCH"});
    deadline_rows.push_back(std::move(row));
  }
  overload_table.Print();
  std::printf("baseline (no deadlines) under the same overload: %llu completed in %.2f s\n",
              static_cast<unsigned long long>(baseline.completed), baseline.wall_s);
  if (!overload_ok) {
    // Still fall through to the JSON write: the CI perf trajectory wants the
    // numbers from a failed run too — the exit code carries the verdict.
    std::fprintf(stderr, "overload phase failed a deadline gate (parity or goodput)\n");
  } else {
    std::printf("non-expired responses stayed bit-identical to the one-shot engine, and "
                "shedding never lost goodput to the no-deadline baseline.\n");
  }

  // --- BENCH_net.json: the sweep's per-config numbers for CI trend
  // tracking. Schema: {meta: {...}, bench, quick, net_configs:
  // [{connections, qps, p50_us, p99_us}], deadline_configs:
  // [{deadline_us, offered_qps, goodput_qps, baseline_ontime_qps}]}. ---
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    WriteBenchMetaJson(json, "net_serving", quick);
    std::fprintf(json, "  \"bench\": \"net_serving\",\n  \"quick\": %s,\n  \"net_configs\": [\n",
                 quick ? "true" : "false");
    for (size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& row = sweep_rows[i];
      std::fprintf(json,
                   "    {\"connections\": %d, \"qps\": %.1f, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f}%s\n",
                   row.connections, row.qps, row.p50_us, row.p99_us,
                   i + 1 == sweep_rows.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n  \"deadline_configs\": [\n");
    for (size_t i = 0; i < deadline_rows.size(); ++i) {
      const DeadlineRow& row = deadline_rows[i];
      std::fprintf(json,
                   "    {\"deadline_us\": %llu, \"offered_qps\": %.1f, \"goodput_qps\": %.1f, "
                   "\"baseline_ontime_qps\": %.1f, \"completed\": %llu, \"expired\": %llu}%s\n",
                   static_cast<unsigned long long>(row.deadline_us), row.offered_qps,
                   row.goodput_qps, row.baseline_ontime_qps,
                   static_cast<unsigned long long>(row.run.completed),
                   static_cast<unsigned long long>(row.run.expired),
                   i + 1 == deadline_rows.size() ? "" : ",");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nconnection-sweep QPS/p50/p99 written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  return overload_ok ? 0 : 1;
}

}  // namespace
}  // namespace flexi

int main(int argc, char** argv) { return flexi::Main(argc, argv); }
