// Fig. 10: weighted Node2Vec under power-law (Pareto alpha sweep) and
// degree-based edge property weights on YT, EU, SK, comparing NextDoor,
// FlowWalker, FlexiWalker.
//
// Paper shape: FlexiWalker is robust across skews (stable time as alpha
// changes); NextDoor blows up on skewed weights (and OOMs on SK at full
// scale); everything slows under degree-based weights; FlexiWalker keeps a
// multi-x lead over FlowWalker.
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Power-law and degree-based property weights", "Fig. 10");

  for (const char* name : {"YT", "EU", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    std::printf("-- %s --\n", name);
    Table table({"weights", "NextDoor", "FlowWalker", "FlexiWalker"});

    auto run_row = [&](const std::string& label, WeightDistribution dist, double alpha) {
      Graph graph = LoadDataset(spec, dist, alpha);
      Node2VecWalk walk(2.0, 0.5, 80);
      auto starts = BenchStarts(graph, 2048);

      bool nd_oom = WouldOom(spec, NextDoorSortBytes(spec));
      double nd = 0.0;
      if (!nd_oom) {
        nd = NextDoorEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
      }
      double fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
      double fxw = FlexiWalkerEngine().Run(graph, walk, starts, kBenchSeed).sim_ms;
      table.AddRow({label, Cell(nd, nd_oom), Cell(fw), Cell(fxw)});
    };

    for (double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
      run_row("alpha=" + Table::Num(alpha), WeightDistribution::kPareto, alpha);
    }
    run_row("degree", WeightDistribution::kDegreeBased, 0.0);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
