// Fig. 16: energy efficiency (joules per query) and peak power (watts) of
// KnightKing, ThunderRW (CPU), FlowWalker, FlexiWalker (GPU) on the five
// largest datasets, weighted Node2Vec.
//
// Paper shape: FlexiWalker is the most energy-efficient (up to 10.15x less
// J/query than KnightKing); its peak power sits above the CPU engines but
// ~1.18x below FlowWalker (whose saturated sequential scans drive the GPU
// harder).
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Energy efficiency", "Fig. 16");

  Table table({"dataset", "KnightKing J/q", "ThunderRW J/q", "FlowWalker J/q",
               "FlexiWalker J/q", "KK W", "TRW W", "FW W", "FXW W"});
  DeviceProfile cpu = DeviceProfile::SimulatedCpu(32);
  DeviceProfile gpu = DeviceProfile::SimulatedGpu();
  for (const char* name : {"FS", "AB", "UK", "TW", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 1024);
    double n = static_cast<double>(starts.size());

    WalkResult kk = KnightKingEngine().Run(graph, walk, starts, kBenchSeed);
    WalkResult trw = ThunderRWEngine().Run(graph, walk, starts, kBenchSeed);
    WalkResult fw = FlowWalkerEngine().Run(graph, walk, starts, kBenchSeed);
    WalkResult fxw = FlexiWalkerEngine().Run(graph, walk, starts, kBenchSeed);

    table.AddRow({name, Table::Num(kk.joules / n), Table::Num(trw.joules / n),
                  Table::Num(fw.joules / n), Table::Num(fxw.joules / n),
                  Table::Num(MaxWatts(kk, cpu)), Table::Num(MaxWatts(trw, cpu)),
                  Table::Num(MaxWatts(fw, gpu)), Table::Num(MaxWatts(fxw, gpu))});
  }
  table.Print();
  return 0;
}
