// Table 2: execution time of all seven systems across the five dynamic
// random walk workloads and ten datasets, uniform property weights.
//
// Paper shape to reproduce: FlexiWalker wins essentially everywhere, by the
// largest margins on weighted workloads (baselines pay per-step max
// reductions or prefix sums); CPU baselines trail GPU ones by orders of
// magnitude; NextDoor OOMs at full scale on the largest datasets. The
// headline aggregate — geometric-mean speedup of FlexiWalker over the best
// CPU and best GPU baseline per cell — is printed at the end (paper: 73.44x
// and 5.91x).
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/walks/metapath.h"
#include "src/walks/node2vec.h"
#include "src/walks/second_order_pr.h"

namespace flexi {
namespace {

struct WorkloadCase {
  std::string name;
  WeightDistribution dist;
  std::function<std::unique_ptr<WalkLogic>()> make;
  // NextDoor/ThunderRW compile-time max for RJS (only unweighted Node2Vec).
  std::optional<double> known_max;
};

std::vector<WorkloadCase> Workloads() {
  std::vector<WorkloadCase> cases;
  cases.push_back({"Node2Vec (unweighted)", WeightDistribution::kUnweighted,
                   [] { return std::make_unique<Node2VecWalk>(2.0, 0.5, 80); }, 2.0});
  cases.push_back({"Node2Vec (weighted)", WeightDistribution::kUniform,
                   [] { return std::make_unique<Node2VecWalk>(2.0, 0.5, 80); },
                   std::nullopt});
  cases.push_back({"MetaPath (unweighted)", WeightDistribution::kUnweighted,
                   [] {
                     return std::make_unique<MetaPathWalk>(
                         std::vector<uint8_t>{0, 1, 2, 3, 4});
                   },
                   std::nullopt});
  cases.push_back({"MetaPath (weighted)", WeightDistribution::kUniform,
                   [] {
                     return std::make_unique<MetaPathWalk>(
                         std::vector<uint8_t>{0, 1, 2, 3, 4});
                   },
                   std::nullopt});
  cases.push_back({"2nd-order PageRank", WeightDistribution::kUniform,
                   [] { return std::make_unique<SecondOrderPageRankWalk>(0.2, 80); },
                   std::nullopt});
  return cases;
}

}  // namespace
}  // namespace flexi

int main() {
  using namespace flexi;
  PrintHeader("Main performance comparison, uniform property weights", "Table 2");

  std::vector<double> cpu_speedups;
  std::vector<double> gpu_speedups;

  for (const WorkloadCase& wc : Workloads()) {
    std::printf("-- %s --\n", wc.name.c_str());
    Table table({"dataset", "SOWalker", "ThunderRW", "C-SAW", "NextDoor", "Skywalker",
                 "FlowWalker", "FlexiWalker"});
    for (const DatasetSpec& spec : AllDatasets()) {
      Graph graph = LoadDataset(spec, wc.dist);
      auto walk = wc.make();
      auto starts = BenchStarts(graph, 1024);

      SOWalkerEngine sowalker;
      ThunderRWEngine thunderrw(wc.known_max);
      CSawEngine csaw;
      NextDoorEngine nextdoor(wc.known_max);
      SkywalkerEngine skywalker;
      FlowWalkerEngine flowwalker;
      FlexiWalkerEngine flexiwalker;

      double so = sowalker.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      double trw = thunderrw.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      double cs = csaw.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      bool nd_oom = WouldOom(spec, NextDoorSortBytes(spec));
      double nd = nd_oom ? 0.0 : nextdoor.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      double sky = skywalker.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      double fw = flowwalker.Run(graph, *walk, starts, kBenchSeed).sim_ms;
      double fxw = flexiwalker.Run(graph, *walk, starts, kBenchSeed).sim_ms;

      table.AddRow({spec.name, Cell(so), Cell(trw), Cell(cs), Cell(nd, nd_oom), Cell(sky),
                    Cell(fw), Cell(fxw)});

      double best_cpu = std::min(so, trw);
      double best_gpu = std::min({cs, nd_oom ? 1e300 : nd, sky, fw});
      cpu_speedups.push_back(best_cpu / fxw);
      gpu_speedups.push_back(best_gpu / fxw);
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("geomean speedup of FlexiWalker over best CPU baseline:  %.2fx (paper: 73.44x)\n",
              GeometricMean(cpu_speedups));
  std::printf("geomean speedup of FlexiWalker over best GPU baseline:  %.2fx (paper: 5.91x)\n",
              GeometricMean(gpu_speedups));
  return 0;
}
