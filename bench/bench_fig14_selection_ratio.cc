// Fig. 14: the fraction of sampling steps for which the cost model chose
// eRVS vs eRJS on YT, EU, SK across Pareto shape values.
//
// Paper shape: rejection sampling is selected far less as the distribution
// grows more skewed (lower alpha) — the model correctly tracks the edge
// probability distribution.
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Ratio of chosen sampling method", "Fig. 14");

  for (const char* name : {"YT", "EU", "SK"}) {
    const DatasetSpec& spec = DatasetByName(name);
    std::printf("-- %s --\n", name);
    Table table({"alpha", "eRVS %", "eRJS %"});
    for (double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
      Graph graph = LoadDataset(spec, WeightDistribution::kPareto, alpha);
      Node2VecWalk walk(2.0, 0.5, 80);
      auto starts = BenchStarts(graph, 1024);
      FlexiWalkerEngine engine;
      WalkResult result = engine.Run(graph, walk, starts, kBenchSeed);
      double rjs_pct = result.selection.RjsRatio() * 100.0;
      table.AddRow({Table::Num(alpha), Table::Num(100.0 - rjs_pct), Table::Num(rjs_pct)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
