// Fig. 3: normalized execution time of the four base sampling methods
// (ITS/C-SAW, ALS/Skywalker, RVS/FlowWalker, RJS/NextDoor) on unweighted
// and weighted Node2Vec over YT, CP, OK, EU. Times are normalized to ITS.
//
// Paper shape to reproduce: ITS and ALS pay per-step table construction and
// lose badly; RJS wins the unweighted case (compile-time max bound), RVS
// wins the weighted case (RJS's per-step max reduce erases its advantage).
#include "bench/bench_util.h"
#include "src/walks/node2vec.h"

namespace flexi {
namespace {

void RunVariant(const char* title, bool weighted) {
  std::printf("-- %s Node2Vec --\n", title);
  Table table({"dataset", "ITS (C-SAW)", "ALS (Skywalker)", "RVS (FlowWalker)",
               "RJS (NextDoor)"});
  for (const char* name : {"YT", "CP", "OK", "EU"}) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph graph = LoadDataset(
        spec, weighted ? WeightDistribution::kUniform : WeightDistribution::kUnweighted);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph);

    CSawEngine its;
    SkywalkerEngine als;
    FlowWalkerEngine rvs;
    // Unweighted Node2Vec: NextDoor's compile-time max(1, 1/a, 1/b) = 2.
    NextDoorEngine rjs(weighted ? std::optional<double>() : std::optional<double>(2.0));

    double its_ms = its.Run(graph, walk, starts, kBenchSeed).sim_ms;
    double als_ms = als.Run(graph, walk, starts, kBenchSeed).sim_ms;
    double rvs_ms = rvs.Run(graph, walk, starts, kBenchSeed).sim_ms;
    double rjs_ms = rjs.Run(graph, walk, starts, kBenchSeed).sim_ms;

    table.AddRow({name, Table::Num(1.0), Table::Num(als_ms / its_ms),
                  Table::Num(rvs_ms / its_ms), Table::Num(rjs_ms / its_ms)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace flexi

int main() {
  flexi::PrintHeader("Sampling method comparison", "Fig. 3 (a) unweighted, (b) weighted");
  flexi::RunVariant("(a) Unweighted", /*weighted=*/false);
  flexi::RunVariant("(b) Weighted", /*weighted=*/true);
  return 0;
}
