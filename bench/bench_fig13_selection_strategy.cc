// Fig. 13: sensitivity of the sampling-method selection strategy — random
// vs degree-based (RVS below 1K degree, RJS above) vs FlexiWalker's
// first-order cost model — on weighted Node2Vec over all ten datasets,
// reported as speedup normalized to degree-based selection.
//
// Paper shape: the cost model wins everywhere (geomean 15.86x over random,
// 2.66x over degree-based).
#include "bench/bench_util.h"
#include "src/metrics/stats.h"
#include "src/walks/node2vec.h"

int main() {
  using namespace flexi;
  PrintHeader("Selection strategy sensitivity", "Fig. 13");

  Table table({"dataset", "Random", "Degree-based", "FlexiWalker (cost model)"});
  std::vector<double> vs_random;
  std::vector<double> vs_degree;
  for (const DatasetSpec& spec : AllDatasets()) {
    Graph graph = LoadDataset(spec, WeightDistribution::kUniform);
    Node2VecWalk walk(2.0, 0.5, 80);
    auto starts = BenchStarts(graph, 1024);

    auto run = [&](SelectionStrategy strategy) {
      FlexiWalkerOptions options;
      options.strategy = strategy;
      return FlexiWalkerEngine(options).Run(graph, walk, starts, kBenchSeed).sim_ms;
    };
    double random_ms = run(SelectionStrategy::kRandom);
    double degree_ms = run(SelectionStrategy::kDegreeThreshold);
    double cost_ms = run(SelectionStrategy::kCostModel);

    table.AddRow({spec.name, Table::Num(degree_ms / random_ms), Table::Num(1.0),
                  Table::Num(degree_ms / cost_ms)});
    vs_random.push_back(random_ms / cost_ms);
    vs_degree.push_back(degree_ms / cost_ms);
  }
  table.Print();
  std::printf("\n(speedup normalized to degree-based selection)\n");
  std::printf("geomean cost-model speedup over random:       %.2fx (paper: 15.86x)\n",
              GeometricMean(vs_random));
  std::printf("geomean cost-model speedup over degree-based: %.2fx (paper: 2.66x)\n",
              GeometricMean(vs_degree));
  return 0;
}
