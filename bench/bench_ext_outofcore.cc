// Out-of-core block-cached walk execution: throughput and peak RSS vs cache
// budget (out_of_core.h). The tier's promise is two-sided and this bench
// gates both halves:
//
//   memory  — edge-array residency is bounded by cache_blocks * block_bytes
//             + fixed overhead (row_ptr, path arena, parked-walk buffers),
//             shown as the peak-RSS column growing with the budget and the
//             all-resident row sitting far under the in-memory baseline's
//             full-graph footprint;
//   paths   — every budget produces paths bit-identical to the in-memory
//             FlexiWalker (non-zero exit on divergence), even when the
//             cache holds a single block and thrashes.
//
// Measurement protocol: ru_maxrss is a process-lifetime high-water mark, so
// graph generation + partitioning run in a fork()ed child (the parent never
// maps the full edge array), budgets sweep smallest-first, and the
// in-memory baseline — whose full-graph footprint would poison every later
// reading — runs last. Per-config numbers land in BENCH_outofcore.json
// (override with --json <path>) for the CI perf trajectory; --quick shrinks
// the graph and uses a tiny block size so the cache thrashes even in CI.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "src/graph/block_store.h"
#include "src/walker/out_of_core.h"
#include "src/walks/deepwalk.h"

namespace flexi {
namespace {

struct BenchShape {
  NodeId nodes;
  double degree;
  size_t block_bytes;
  size_t max_queries;
  uint32_t walk_length;
};

Graph BuildGraph(const BenchShape& shape) {
  Graph g = GenerateErdosRenyi(shape.nodes, shape.degree, kBenchSeed);
  AssignWeights(g, WeightDistribution::kUniform, 0.0, kBenchSeed + 1);
  return g;
}

// Generates and partitions in a child process so the parent's RSS
// high-water mark never includes the full graph. Falls back to doing the
// work in-process when fork is unavailable (the RSS columns then all carry
// the full-graph watermark, which the JSON records honestly via the
// monotonic readings).
bool PartitionInChild(const BenchShape& shape, const std::string& path) {
  pid_t pid = fork();
  if (pid == 0) {
    Graph g = BuildGraph(shape);
    size_t blocks = PartitionToBlockFile(g, path, shape.block_bytes);
    _exit(blocks > 0 ? 0 : 1);
  }
  if (pid < 0) {
    Graph g = BuildGraph(shape);
    return PartitionToBlockFile(g, path, shape.block_bytes) > 0;
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    return false;
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

struct ConfigRow {
  uint32_t cache_blocks;
  uint64_t budget_bytes;
  double wall_ms;
  double qps;
  double steps_per_sec;
  uint64_t peak_rss_bytes;  // monotonic: max over this and earlier configs
  OutOfCoreStats stats;
};

}  // namespace
}  // namespace flexi

int main(int argc, char** argv) {
  using namespace flexi;
  bool quick = false;
  std::string json_path = "BENCH_outofcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  PrintHeader("Out-of-core block-cached execution",
              "out-of-core tier (docs/ARCHITECTURE.md, block cache + walk parking)");

  // Quick: a tiny block budget over a small graph still yields >100 blocks,
  // so a 1-4 block cache genuinely thrashes inside CI's time budget.
  BenchShape shape = quick ? BenchShape{4000, 8.0, kMinBlockBytes, 1024, 16}
                           : BenchShape{100000, 10.0, 64 << 10, 4096, 40};
  const std::string path = "/tmp/flexi_bench_outofcore.blk";
  if (!PartitionInChild(shape, path)) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  BlockStore store = BlockStore::Open(path);
  std::printf("graph: %u nodes, %llu edges -> %zu blocks of <= %zu bytes (%.1f MiB payload)\n",
              store.num_nodes(), static_cast<unsigned long long>(store.num_edges()),
              store.num_blocks(), store.block_bytes(),
              store.TotalPayloadBytes() / (1024.0 * 1024.0));

  DeepWalk walk(shape.walk_length);
  // Starts from node ids only — the parent does not hold the graph.
  std::vector<NodeId> starts;
  uint32_t stride = static_cast<uint32_t>(
      std::max<size_t>(1, (store.num_nodes() + shape.max_queries - 1) / shape.max_queries));
  for (NodeId v = 0; v < store.num_nodes(); v += stride) {
    starts.push_back(v);
  }

  FlexiWalkerOptions options;
  options.edge_cost_ratio = 4.0;  // pinned: profiling needs the full graph

  // Smallest budget first: ru_maxrss can only grow, so each row's reading
  // brackets that config's true footprint from above by at most the
  // previous (smaller) configs' watermark.
  std::vector<uint32_t> budgets = {1, 4};
  if (store.num_blocks() > 16) {
    budgets.push_back(static_cast<uint32_t>(store.num_blocks() / 4));
  }
  budgets.push_back(static_cast<uint32_t>(store.num_blocks()));  // all resident

  std::vector<ConfigRow> rows;
  std::vector<NodeId> ooc_paths;  // smallest-budget paths, the parity witness
  for (uint32_t cache_blocks : budgets) {
    OutOfCoreStats stats;
    auto t0 = std::chrono::steady_clock::now();
    WalkResult result =
        RunFlexiWalkerOutOfCore(store, walk, options, cache_blocks, starts, kBenchSeed, &stats);
    double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (ooc_paths.empty()) {
      ooc_paths = result.paths;
    } else if (result.paths != ooc_paths) {
      std::fprintf(stderr, "PARITY FAILURE: cache=%u paths diverge from cache=%u\n",
                   cache_blocks, budgets.front());
      return 1;
    }
    ConfigRow row;
    row.cache_blocks = cache_blocks;
    row.budget_bytes = static_cast<uint64_t>(cache_blocks) * store.block_bytes();
    row.wall_ms = wall_ms;
    row.qps = starts.size() / (wall_ms / 1000.0);
    row.steps_per_sec = CountSampledSteps(result) / (wall_ms / 1000.0);
    row.peak_rss_bytes = BenchPeakRssBytes();
    row.stats = stats;
    rows.push_back(row);
  }

  // In-memory baseline last: regenerating the graph here hoists the
  // process watermark to the full-graph footprint, which is exactly the
  // number the baseline row should show — and why it cannot run earlier.
  Graph g = BuildGraph(shape);
  auto t0 = std::chrono::steady_clock::now();
  WalkResult reference = FlexiWalkerEngine(options).Run(g, walk, starts, kBenchSeed);
  double base_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  double base_qps = starts.size() / (base_wall_ms / 1000.0);
  double base_steps = CountSampledSteps(reference) / (base_wall_ms / 1000.0);
  uint64_t base_rss = BenchPeakRssBytes();
  if (reference.paths != ooc_paths) {
    std::fprintf(stderr, "PARITY FAILURE: out-of-core paths diverge from the in-memory engine\n");
    return 1;
  }

  Table table({"cache blocks", "budget MiB", "QPS", "steps/sec", "peak RSS MiB", "block loads",
               "reload factor", "read MiB", "hit rate", "parks"});
  for (const ConfigRow& row : rows) {
    const double lookups =
        static_cast<double>(row.stats.cache_hits + row.stats.block_loads);
    table.AddRow({std::to_string(row.cache_blocks), Table::Num(row.budget_bytes / (1024.0 * 1024.0)),
                  Table::Num(row.qps), Table::Num(row.steps_per_sec),
                  Table::Num(row.peak_rss_bytes / (1024.0 * 1024.0)),
                  std::to_string(row.stats.block_loads),
                  Table::Num(static_cast<double>(row.stats.block_loads) /
                             static_cast<double>(store.num_blocks())),
                  Table::Num(row.stats.bytes_read / (1024.0 * 1024.0)),
                  Table::Num(lookups > 0 ? row.stats.cache_hits / lookups : 0.0),
                  std::to_string(row.stats.parks)});
  }
  table.AddRow({"in-memory", "full graph", Table::Num(base_qps), Table::Num(base_steps),
                Table::Num(base_rss / (1024.0 * 1024.0)), "-", "-", "-", "-", "-"});
  table.Print();
  std::printf("\n%zu queries, deepwalk len-%u; paths bit-identical across every cache budget "
              "and the in-memory engine.\n",
              starts.size(), shape.walk_length);
  double all_resident_qps = rows.back().qps;
  std::printf("all-resident out-of-core vs in-memory: %.2fx QPS\n", all_resident_qps / base_qps);

  // Schema: {meta:{...}, workload:{...}, cache_configs:[{cache_blocks,
  // budget_bytes, wall_ms, qps, steps_per_sec, peak_rss_bytes, block_loads,
  // cache_hits, evictions, bytes_read, parks}], baseline:{...}} —
  // cache_configs is diffed by the
  // CI perf trajectory (scripts/perf_trajectory.py, matched on
  // cache_blocks).
  if (std::FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    WriteBenchMetaJson(json, "ext_outofcore", quick);
    std::fprintf(json,
                 "  \"workload\": {\"queries\": %zu, \"walk_length\": %u, \"blocks\": %zu, "
                 "\"block_bytes\": %zu},\n  \"cache_configs\": [\n",
                 starts.size(), shape.walk_length, store.num_blocks(), store.block_bytes());
    for (size_t i = 0; i < rows.size(); ++i) {
      const ConfigRow& row = rows[i];
      std::fprintf(json,
                   "    {\"cache_blocks\": %u, \"budget_bytes\": %llu, \"wall_ms\": %.3f, "
                   "\"qps\": %.1f, \"steps_per_sec\": %.1f, \"peak_rss_bytes\": %llu, "
                   "\"block_loads\": %llu, \"cache_hits\": %llu, \"evictions\": %llu, "
                   "\"bytes_read\": %llu, \"parks\": %llu}%s\n",
                   row.cache_blocks, static_cast<unsigned long long>(row.budget_bytes),
                   row.wall_ms, row.qps, row.steps_per_sec,
                   static_cast<unsigned long long>(row.peak_rss_bytes),
                   static_cast<unsigned long long>(row.stats.block_loads),
                   static_cast<unsigned long long>(row.stats.cache_hits),
                   static_cast<unsigned long long>(row.stats.block_evictions),
                   static_cast<unsigned long long>(row.stats.bytes_read),
                   static_cast<unsigned long long>(row.stats.parks),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(json,
                 "  ],\n  \"baseline\": {\"qps\": %.1f, \"steps_per_sec\": %.1f, "
                 "\"peak_rss_bytes\": %llu}\n}\n",
                 base_qps, base_steps, static_cast<unsigned long long>(base_rss));
    std::fclose(json);
    std::printf("per-budget QPS/steps-per-sec/peak-RSS written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  std::remove(path.c_str());
  return 0;
}
